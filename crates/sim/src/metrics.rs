//! Measurement instruments used by every experiment.
//!
//! * [`IntervalSeries`] — fixed-width time-bucket accumulator, the
//!   instrument behind the paper's "throughput at 20 ms intervals" plots.
//! * [`Histogram`] — log-bucketed latency histogram with exact min/max,
//!   good for the request-latency distributions of Fig. 10.
//! * [`summary`] — scalar statistics (mean, relative standard deviation /
//!   coefficient of variation, percentiles) used throughout Sec. 4.6.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// IntervalSeries
// ---------------------------------------------------------------------------

/// Accumulates a quantity (bytes, ops) into fixed-width virtual-time
/// buckets, yielding a rate series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalSeries {
    /// Bucket width.
    interval: SimDuration,
    /// Start of the first bucket.
    origin: SimTime,
    /// Accumulated quantity per bucket.
    buckets: Vec<f64>,
}

impl IntervalSeries {
    /// Create a series with the given bucket width, starting at `origin`.
    pub fn new(origin: SimTime, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        IntervalSeries {
            interval,
            origin,
            buckets: Vec::new(),
        }
    }

    /// Record `amount` at instant `t`. Events before `origin` land in
    /// bucket 0.
    pub fn record(&mut self, t: SimTime, amount: f64) {
        let idx = (t.duration_since(self.origin).as_nanos() / self.interval.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += amount;
    }

    /// Spread `amount` uniformly over `[start, end)`, proportionally per
    /// bucket — used when a transfer spans several sampling intervals.
    pub fn record_span(&mut self, start: SimTime, end: SimTime, amount: f64) {
        if end <= start {
            self.record(start, amount);
            return;
        }
        let total = (end - start).as_nanos() as f64;
        let ival = self.interval.as_nanos();
        let mut t = start.as_nanos();
        let end_ns = end.as_nanos();
        let origin = self.origin.as_nanos();
        while t < end_ns {
            let rel = t.saturating_sub(origin);
            let bucket_end = origin + (rel / ival + 1) * ival;
            let chunk_end = bucket_end.min(end_ns);
            let frac = (chunk_end - t) as f64 / total;
            self.record(SimTime::from_nanos(t), amount * frac);
            t = chunk_end;
        }
    }

    /// Bucket width.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Raw per-bucket totals.
    pub fn totals(&self) -> &[f64] {
        &self.buckets
    }

    /// Per-bucket rate in units/second.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let secs = self.interval.as_secs_f64();
        self.buckets.iter().map(|b| b / secs).collect()
    }

    /// `(bucket_start_seconds, rate_per_sec)` pairs, ready for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let secs = self.interval.as_secs_f64();
        let origin = self.origin.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| (origin + i as f64 * secs, b / secs))
            .collect()
    }

    /// Sum over all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Highest per-bucket rate (units/second).
    pub fn peak_rate(&self) -> f64 {
        let secs = self.interval.as_secs_f64();
        self.buckets.iter().fold(0.0f64, |a, &b| a.max(b / secs))
    }

    /// Merge another series with identical origin/interval into this one.
    pub fn merge(&mut self, other: &IntervalSeries) {
        assert_eq!(self.interval, other.interval, "interval mismatch");
        assert_eq!(self.origin, other.origin, "origin mismatch");
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0.0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Log-bucketed histogram over positive values with ~4.5% relative bucket
/// resolution, plus exact count/sum/min/max. Records values in seconds
/// (or any positive unit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// log-spaced bucket counts; bucket i covers [BASE^i*MIN, BASE^(i+1)*MIN)
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Smallest representable value (1 ns when values are seconds).
const HIST_MIN: f64 = 1e-9;
/// Per-bucket growth factor.
const HIST_BASE: f64 = 1.045;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v <= HIST_MIN {
            return 0;
        }
        ((v / HIST_MIN).ln() / HIST_BASE.ln()) as usize
    }

    fn bucket_value(i: usize) -> f64 {
        // Geometric midpoint of bucket i.
        HIST_MIN * HIST_BASE.powf(i as f64 + 0.5)
    }

    /// Record a value. Non-finite or non-positive values clamp to the
    /// smallest bucket.
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() && v > 0.0 {
            v
        } else {
            HIST_MIN
        };
        let idx = Self::bucket_of(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (nearest-rank over the log
    /// buckets, clamped to the exact min/max).
    ///
    /// Edge cases are exact: an empty histogram returns 0, `q <= 0`
    /// returns the exact minimum, `q >= 1` the exact maximum — so
    /// quantiles are always within the recorded range and
    /// `quantile(0) <= quantile(q) <= quantile(1)` holds for any `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Condensed summary for reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.median(),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

/// The headline statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Recorded values.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Exact minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Exact maximum.
    pub max: f64,
}

// ---------------------------------------------------------------------------
// Scalar summaries
// ---------------------------------------------------------------------------

/// Scalar statistics over a slice of samples.
pub mod summary {
    /// Arithmetic mean (0 for empty input).
    pub fn mean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(xs: &[f64]) -> f64 {
        if xs.len() < 2 {
            return 0.0;
        }
        let m = mean(xs);
        (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
    }

    /// Coefficient of variation in percent — the paper's CoV measure
    /// (relative standard deviation).
    pub fn cov_percent(xs: &[f64]) -> f64 {
        let m = mean(xs);
        if m == 0.0 {
            0.0
        } else {
            100.0 * std_dev(xs) / m
        }
    }

    /// Exact percentile by sorting a copy (nearest-rank).
    pub fn percentile(xs: &[f64], p: f64) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
        let rank = ((p.clamp(0.0, 1.0) * v.len() as f64).ceil() as usize).max(1);
        v[rank - 1]
    }

    /// Median via [`percentile`].
    pub fn median(xs: &[f64]) -> f64 {
        percentile(xs, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn interval_series_buckets_and_rates() {
        let mut s = IntervalSeries::new(SimTime::ZERO, SimDuration::from_millis(20));
        s.record(t(0), 10.0);
        s.record(t(19), 5.0);
        s.record(t(20), 7.0);
        s.record(t(100), 1.0);
        assert_eq!(s.totals(), &[15.0, 7.0, 0.0, 0.0, 0.0, 1.0]);
        let rates = s.rates_per_sec();
        assert!((rates[0] - 750.0).abs() < 1e-9);
        assert!((s.total() - 23.0).abs() < 1e-9);
        assert!((s.peak_rate() - 750.0).abs() < 1e-9);
    }

    #[test]
    fn record_span_distributes_proportionally() {
        let mut s = IntervalSeries::new(SimTime::ZERO, SimDuration::from_millis(20));
        // 100 units over [10ms, 50ms): 10ms in b0, 20ms in b1, 10ms in b2.
        s.record_span(t(10), t(50), 100.0);
        let tot = s.totals();
        assert!((tot[0] - 25.0).abs() < 1e-9, "{tot:?}");
        assert!((tot[1] - 50.0).abs() < 1e-9, "{tot:?}");
        assert!((tot[2] - 25.0).abs() < 1e-9, "{tot:?}");
        assert!((s.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn record_span_degenerate_interval() {
        let mut s = IntervalSeries::new(SimTime::ZERO, SimDuration::from_millis(20));
        s.record_span(t(30), t(30), 5.0);
        assert!((s.total() - 5.0).abs() < 1e-12);
        assert!((s.totals()[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn series_merge() {
        let mut a = IntervalSeries::new(SimTime::ZERO, SimDuration::from_millis(20));
        let mut b = IntervalSeries::new(SimTime::ZERO, SimDuration::from_millis(20));
        a.record(t(0), 1.0);
        b.record(t(40), 2.0);
        a.merge(&b);
        assert_eq!(a.totals(), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn histogram_quantiles_close_to_exact() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // 1ms..1s uniform
        }
        assert_eq!(h.count(), 1000);
        let med = h.median();
        assert!((med - 0.5).abs() / 0.5 < 0.05, "median {med}");
        let p95 = h.quantile(0.95);
        assert!((p95 - 0.95).abs() / 0.95 < 0.05, "p95 {p95}");
        assert!((h.min() - 0.001).abs() < 1e-12);
        assert!((h.max() - 1.0).abs() < 1e-12);
        assert!((h.mean() - 0.5005).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_equals_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for i in 1..=100 {
            let v = i as f64 * 0.01;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert_eq!(a.summary().p95, c.summary().p95);
    }

    #[test]
    fn histogram_handles_degenerate_inputs() {
        let mut h = Histogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(0.0);
        assert_eq!(h.count(), 3);
        assert!(h.max() <= 1e-8);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: every quantile is 0.
        let empty = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(empty.quantile(q), 0.0);
        }
        // q<=0 and q>=1 are the exact extrema, even out of range.
        let mut h = Histogram::new();
        for v in [0.017, 0.4, 0.9] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0.017);
        assert_eq!(h.quantile(-3.0), 0.017);
        assert_eq!(h.quantile(1.0), 0.9);
        assert_eq!(h.quantile(7.0), 0.9);
        // Single value: every quantile collapses onto it.
        let mut one = Histogram::new();
        one.record(0.25);
        for q in [0.0, 0.5, 0.95, 0.999, 1.0] {
            assert_eq!(one.quantile(q), 0.25, "q={q}");
        }
        // Monotone across the whole range.
        let mut prev = h.quantile(0.0);
        for i in 1..=100 {
            let cur = h.quantile(i as f64 / 100.0);
            assert!(cur >= prev, "quantile not monotone at {i}%");
            prev = cur;
        }
    }

    #[test]
    fn summary_orders_percentiles_with_p999() {
        let mut h = Histogram::new();
        for i in 1..=2000 {
            h.record(i as f64 / 1000.0);
        }
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p99 <= s.p999 && s.p999 <= s.max);
        assert!((s.p999 - 1.998).abs() / 1.998 < 0.05, "p999 {}", s.p999);
    }

    mod merge_props {
        use super::*;
        use proptest::prelude::*;

        fn values() -> impl Strategy<Value = Vec<f64>> {
            prop::collection::vec(1e-7..10.0f64, 0..60)
        }

        fn hist(vals: &[f64]) -> Histogram {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        }

        proptest! {
            /// Merge is associative for quantile outputs (bit-exact):
            /// counts are u64 sums and min/max are f64 min/max, all
            /// associative, and `quantile` never consults the
            /// order-sensitive float `sum`. This is what lets harness
            /// workers merge per-sim histograms in any grouping.
            #[test]
            fn merge_is_associative_for_quantiles(
                a in values(), b in values(), c in values()
            ) {
                let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
                // (a ⊔ b) ⊔ c
                let mut left = ha.clone();
                left.merge(&hb);
                left.merge(&hc);
                // a ⊔ (b ⊔ c)
                let mut bc = hb.clone();
                bc.merge(&hc);
                let mut right = ha.clone();
                right.merge(&bc);
                prop_assert_eq!(left.count(), right.count());
                for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
                    prop_assert_eq!(
                        left.quantile(q).to_bits(),
                        right.quantile(q).to_bits(),
                        "q={} diverged: {} vs {}", q, left.quantile(q), right.quantile(q)
                    );
                }
            }
        }
    }

    #[test]
    fn summary_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((summary::mean(&xs) - 5.0).abs() < 1e-12);
        assert!((summary::std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((summary::cov_percent(&xs) - 40.0).abs() < 1e-12);
        assert_eq!(summary::median(&xs), 4.0);
        assert_eq!(summary::percentile(&xs, 1.0), 9.0);
        assert_eq!(summary::percentile(&[], 0.5), 0.0);
    }
}
