//! A single-threaded async executor driven by virtual time.
//!
//! Services in the simulation are written as ordinary `async fn`s that call
//! [`SimCtx::sleep`] instead of blocking. The executor polls ready tasks to
//! quiescence, then jumps the virtual clock straight to the next timer
//! deadline — so a simulated day costs only as many polls as there are
//! events in it.
//!
//! The executor is deliberately deterministic: tasks are woken in FIFO
//! order, timers with equal deadlines fire in registration order, and the
//! only randomness available to tasks flows through the seeded [`SimRng`]
//! accessible via [`SimCtx::with_rng`].
//!
//! ## Hot-path layout
//!
//! The scheduler's data structures are chosen for the poll loop, which
//! dominates the wall-clock cost of a full experiment suite (DESIGN.md §3
//! "Simulator performance"):
//!
//! * tasks live in a generation-indexed [`Slab`] — a `Vec` indexed by the
//!   low bits of the `TaskId`, so a poll is an array load, not a hash —
//!   with free-list reuse and generation checks that make stale wakes miss;
//! * timers live in a cancellation-aware quaternary [`TimerHeap`]: a
//!   cancelled sleep is removed immediately instead of leaving a tombstone
//!   that must bubble to the top of a `BinaryHeap`;
//! * each task's [`Waker`] is created once and cached in its slab slot
//!   (an `Arc` clone per poll instead of a fresh allocation);
//! * the tracer, sanitizer, fault plan, and RNG sit behind a single
//!   [`RefCell`] of scheduler hooks, borrowed once per step rather than
//!   once per handle.

use crate::faults::{FaultConfig, FaultPlan};
use crate::rng::SimRng;
use crate::sanitizer::Sanitizer;
use crate::slab::Slab;
use crate::telemetry::MetricRegistry;
use crate::time::{SimDuration, SimTime};
use crate::timer_heap::{TimerHeap, TimerKey};
use crate::trace::Tracer;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

type LocalBoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Identifier of a spawned task: a generation-indexed slab key. The low 32
/// bits index the task table; the high bits are the slot's generation, so
/// ids of completed tasks are never resurrected by slot reuse.
pub type TaskId = u64;

/// The shared wake queue. `Waker` must be `Send + Sync`, so this small piece
/// of state uses `Arc<Mutex<..>>` even though the executor itself is
/// single-threaded.
#[derive(Default)]
struct WakeQueue {
    woken: Mutex<Vec<TaskId>>,
}

struct TaskWaker {
    id: TaskId,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue
            .woken
            .lock()
            .expect("wake queue poisoned")
            .push(self.id);
    }
}

/// One entry in the task slab.
struct Task {
    /// The future, `None` only while it is being polled.
    fut: Option<LocalBoxFuture>,
    /// Cached waker, created lazily on first poll and cloned thereafter.
    waker: Option<Waker>,
}

/// Scheduler hooks behind one cell: everything the executor (and tasks,
/// via [`SimCtx`]) consults per step, borrowed together instead of through
/// four separate `RefCell`s.
struct Hooks {
    rng: SimRng,
    /// Trace sink; disabled (no-op) unless installed via [`Sim::install_tracer`].
    tracer: Tracer,
    /// Runtime determinism sanitizer; active by default in debug builds.
    sanitizer: Sanitizer,
    /// Fault-injection plan; disabled (injects nothing) unless installed
    /// via [`Sim::install_faults`].
    faults: FaultPlan,
    /// Metric registry; disabled (all handles no-op) unless installed via
    /// [`Sim::install_metrics`].
    metrics: MetricRegistry,
}

/// The executor's own always-on event counters. Plain `Cell`s — an
/// increment costs less than the poll it annotates — flushed into the
/// metric registry (when one is installed) as each run returns, with
/// absolute `set` semantics so repeated `run_until` calls stay idempotent.
#[derive(Default)]
struct ExecStats {
    /// Task polls performed.
    polls: Cell<u64>,
    /// Virtual-clock advances to a timer deadline.
    advances: Cell<u64>,
    /// Timers fired at their deadline.
    timer_fires: Cell<u64>,
    /// Timers registered.
    timer_inserts: Cell<u64>,
    /// Timers cancelled before firing (race losers, dropped sleeps).
    timer_cancels: Cell<u64>,
    /// Tasks spawned.
    spawned: Cell<u64>,
    /// Tasks run to completion.
    completed: Cell<u64>,
    /// Peak concurrently-live tasks (slab occupancy high-water mark).
    peak_live: Cell<u64>,
}

struct SimState {
    now: Cell<SimTime>,
    tasks: RefCell<Slab<Task>>,
    ready: RefCell<VecDeque<TaskId>>,
    timers: RefCell<TimerHeap<Waker>>,
    hooks: RefCell<Hooks>,
    wake_queue: Arc<WakeQueue>,
    /// Count of tasks that have been spawned but not yet completed.
    live_tasks: Cell<usize>,
    /// Self-profiling counters (always on; flushed to the registry).
    stats: ExecStats,
    /// RNG seed this simulation was created with.
    seed: u64,
}

/// The simulation: owns the virtual clock, task set, and timer wheel.
///
/// Typical structure of an experiment:
///
/// ```
/// use skyrise_sim::{Sim, SimDuration};
///
/// let mut sim = Sim::new(42);
/// let ctx = sim.ctx();
/// let handle = sim.spawn(async move {
///     ctx.sleep(SimDuration::from_secs(5)).await;
///     ctx.now()
/// });
/// sim.run();
/// assert_eq!(handle.try_take().unwrap().as_secs_f64(), 5.0);
/// ```
pub struct Sim {
    state: Rc<SimState>,
}

/// A cloneable handle onto the simulation, usable from inside tasks.
#[derive(Clone)]
pub struct SimCtx {
    state: Weak<SimState>,
}

impl Sim {
    /// Create a simulation with the given RNG seed. Identical seeds yield
    /// identical runs.
    pub fn new(seed: u64) -> Self {
        Sim {
            state: Rc::new(SimState {
                now: Cell::new(SimTime::ZERO),
                tasks: RefCell::new(Slab::new()),
                ready: RefCell::new(VecDeque::new()),
                timers: RefCell::new(TimerHeap::new()),
                hooks: RefCell::new(Hooks {
                    rng: SimRng::new(seed),
                    tracer: Tracer::disabled(),
                    // Debug builds (what `cargo test` runs) sanitize every
                    // simulation; release experiment binaries opt in via
                    // [`Sim::enable_sanitizer`].
                    sanitizer: if cfg!(debug_assertions) {
                        Sanitizer::new()
                    } else {
                        Sanitizer::disabled()
                    },
                    faults: FaultPlan::disabled(),
                    metrics: MetricRegistry::disabled(),
                }),
                wake_queue: Arc::new(WakeQueue::default()),
                live_tasks: Cell::new(0),
                stats: ExecStats::default(),
                seed,
            }),
        }
    }

    /// Enable tracing for this simulation: installs an enabled [`Tracer`]
    /// (run id = seed) that all components reach via [`SimCtx::tracer`],
    /// and returns a handle that outlives the simulation for export.
    pub fn install_tracer(&self) -> Tracer {
        let tracer = Tracer::new(self.state.seed);
        self.state.hooks.borrow_mut().tracer = tracer.clone();
        tracer
    }

    /// The tracer currently installed (disabled by default).
    pub fn tracer(&self) -> Tracer {
        self.state.hooks.borrow().tracer.clone()
    }

    /// Enable the runtime determinism sanitizer (fresh state) and return a
    /// handle that outlives the simulation, for post-run [`report`]s and
    /// cross-run digest comparison.
    ///
    /// [`report`]: Sanitizer::report
    pub fn enable_sanitizer(&self) -> Sanitizer {
        let san = Sanitizer::new();
        self.state.hooks.borrow_mut().sanitizer = san.clone();
        san
    }

    /// Turn the sanitizer off (e.g. for a release-mode perf run that was
    /// built with debug assertions).
    pub fn disable_sanitizer(&self) {
        self.state.hooks.borrow_mut().sanitizer = Sanitizer::disabled();
    }

    /// The sanitizer currently installed.
    pub fn sanitizer(&self) -> Sanitizer {
        self.state.hooks.borrow().sanitizer.clone()
    }

    /// Install a fault-injection plan (seeded from this simulation's seed,
    /// on a salted private RNG stream) and return a handle that outlives
    /// the simulation for post-run [`FaultPlan::stats`]. Components reach
    /// the plan via [`SimCtx::faults`]; without this call the plan is
    /// disabled and injects nothing.
    pub fn install_faults(&self, config: FaultConfig) -> FaultPlan {
        let plan = FaultPlan::new(self.state.seed, config);
        self.state.hooks.borrow_mut().faults = plan.clone();
        plan
    }

    /// The fault plan currently installed (disabled by default).
    pub fn faults(&self) -> FaultPlan {
        self.state.hooks.borrow().faults.clone()
    }

    /// Install a metric registry and return a handle that outlives the
    /// simulation for snapshot/export. Components reach the registry via
    /// [`SimCtx::metrics`] and cache their handles at construction;
    /// without this call the registry is disabled and every metric
    /// operation is a no-op.
    pub fn install_metrics(&self) -> MetricRegistry {
        let registry = MetricRegistry::new();
        self.state.hooks.borrow_mut().metrics = registry.clone();
        registry
    }

    /// The metric registry currently installed (disabled by default).
    pub fn metrics(&self) -> MetricRegistry {
        self.state.hooks.borrow().metrics.clone()
    }

    /// A handle for spawning and sleeping from inside tasks.
    pub fn ctx(&self) -> SimCtx {
        SimCtx {
            state: Rc::downgrade(&self.state),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.state.now.get()
    }

    /// Spawn a root task. See [`SimCtx::spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.ctx().spawn(fut)
    }

    /// Run until no task is runnable and no timer is pending.
    ///
    /// Returns the virtual time at quiescence. Panics if tasks remain alive
    /// but blocked forever (deadlock) — this is a bug in the simulation
    /// model, and failing loudly beats hanging.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until quiescence or until the clock would pass `limit`,
    /// whichever comes first. Timers beyond `limit` stay pending.
    pub fn run_until(&mut self, limit: SimTime) -> SimTime {
        // The sanitizer handle shares its state with the installed one, so
        // one clone up front covers the whole run — the hooks cell is not
        // re-borrowed per step.
        let sanitizer = self.state.hooks.borrow().sanitizer.clone();
        loop {
            self.drain_ready(&sanitizer);
            let stats = &self.state.stats;
            // No runnable tasks: advance to the next timer. Cancelled
            // timers were removed eagerly, so the head is always live.
            let next = self.state.timers.borrow().peek_deadline();
            match next {
                Some(deadline) if deadline <= limit => {
                    sanitizer.on_advance(self.state.now.get(), deadline);
                    self.state.now.set(deadline);
                    stats.advances.set(stats.advances.get() + 1);
                    // Fire every timer at this deadline, in registration
                    // order (the heap breaks deadline ties by insertion seq).
                    let mut timers = self.state.timers.borrow_mut();
                    while let Some(waker) = timers.pop_due(deadline) {
                        stats.timer_fires.set(stats.timer_fires.get() + 1);
                        waker.wake();
                    }
                }
                Some(_) => {
                    // Next event beyond limit.
                    self.flush_metrics();
                    return self.state.now.get();
                }
                None => {
                    let live = self.state.live_tasks.get();
                    assert!(
                        live == 0,
                        "simulation deadlock: {live} task(s) blocked with no pending timer"
                    );
                    self.flush_metrics();
                    return self.state.now.get();
                }
            }
        }
    }

    /// Flush the executor's self-profiling counters into the registry.
    /// Absolute `set`s: calling after every `run_until` leaves the same
    /// final values as calling once at the end.
    fn flush_metrics(&self) {
        let metrics = self.state.hooks.borrow().metrics.clone();
        if !metrics.enabled() {
            return;
        }
        let s = &self.state.stats;
        metrics.counter("sim.executor.polls").set(s.polls.get());
        metrics
            .counter("sim.executor.advances")
            .set(s.advances.get());
        metrics
            .counter("sim.executor.tasks_spawned")
            .set(s.spawned.get());
        metrics
            .counter("sim.executor.tasks_completed")
            .set(s.completed.get());
        metrics
            .counter("sim.timer.inserts")
            .set(s.timer_inserts.get());
        metrics.counter("sim.timer.fires").set(s.timer_fires.get());
        metrics
            .counter("sim.timer.cancels")
            .set(s.timer_cancels.get());
        metrics
            .gauge("sim.executor.peak_live_tasks")
            .set(s.peak_live.get() as f64);
    }

    /// Poll every woken task until the ready queue is empty.
    fn drain_ready(&mut self, sanitizer: &Sanitizer) {
        loop {
            // Pull wakes accumulated since the last pass.
            {
                let mut woken = self
                    .state
                    .wake_queue
                    .woken
                    .lock()
                    .expect("wake queue poisoned");
                let mut ready = self.state.ready.borrow_mut();
                ready.extend(woken.drain(..));
            }
            let Some(id) = self.state.ready.borrow_mut().pop_front() else {
                // Re-check: a wake may have raced in (not possible single-
                // threaded, but cheap to verify emptiness once more).
                let empty = self
                    .state
                    .wake_queue
                    .woken
                    .lock()
                    .expect("wake queue poisoned")
                    .is_empty();
                if empty {
                    return;
                }
                continue;
            };
            // Take the future out of its slot for the poll (a task may
            // spawn siblings mid-poll, which re-borrows the slab). The
            // generation check makes wakes for completed tasks miss.
            let (mut fut, waker) = {
                let mut tasks = self.state.tasks.borrow_mut();
                let Some(task) = tasks.get_mut(id) else {
                    continue; // task already completed; stale wake
                };
                let Some(fut) = task.fut.take() else {
                    continue; // duplicate wake already being handled
                };
                let waker = task
                    .waker
                    .get_or_insert_with(|| {
                        Waker::from(Arc::new(TaskWaker {
                            id,
                            queue: Arc::clone(&self.state.wake_queue),
                        }))
                    })
                    .clone();
                (fut, waker)
            };
            sanitizer.on_poll(id, self.state.now.get());
            let stats = &self.state.stats;
            stats.polls.set(stats.polls.get() + 1);
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    self.state.tasks.borrow_mut().remove(id);
                    self.state.live_tasks.set(self.state.live_tasks.get() - 1);
                    stats.completed.set(stats.completed.get() + 1);
                    sanitizer.on_complete(id);
                }
                Poll::Pending => {
                    if let Some(task) = self.state.tasks.borrow_mut().get_mut(id) {
                        task.fut = Some(fut);
                    }
                }
            }
        }
    }
}

impl SimCtx {
    fn state(&self) -> Rc<SimState> {
        self.state
            .upgrade()
            .expect("SimCtx used after simulation was dropped")
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.state().now.get()
    }

    /// Current virtual time, or `None` if the simulation was dropped.
    /// Used by trace span guards, which may be dropped after teardown.
    pub(crate) fn try_now(&self) -> Option<SimTime> {
        self.state.upgrade().map(|s| s.now.get())
    }

    /// The simulation's tracer (disabled, i.e. no-op, unless a tracer was
    /// installed via [`Sim::install_tracer`]). Cheap to clone and call.
    pub fn tracer(&self) -> Tracer {
        match self.state.upgrade() {
            Some(s) => s.hooks.borrow().tracer.clone(),
            None => Tracer::disabled(),
        }
    }

    /// The simulation's sanitizer (no-op when disabled). Model crates use
    /// this to assert domain invariants — token conservation, meter
    /// cross-checks — without holding state of their own.
    pub fn sanitizer(&self) -> Sanitizer {
        match self.state.upgrade() {
            Some(s) => s.hooks.borrow().sanitizer.clone(),
            None => Sanitizer::disabled(),
        }
    }

    /// The simulation's fault-injection plan (disabled, i.e. injecting
    /// nothing, unless installed via [`Sim::install_faults`]). Cheap to
    /// clone and query.
    pub fn faults(&self) -> FaultPlan {
        match self.state.upgrade() {
            Some(s) => s.hooks.borrow().faults.clone(),
            None => FaultPlan::disabled(),
        }
    }

    /// The simulation's metric registry (disabled, i.e. handing out no-op
    /// handles, unless installed via [`Sim::install_metrics`]). Subsystems
    /// call this once at construction and cache the handles they need.
    pub fn metrics(&self) -> MetricRegistry {
        match self.state.upgrade() {
            Some(s) => s.hooks.borrow().metrics.clone(),
            None => MetricRegistry::disabled(),
        }
    }

    /// Spawn a task onto the simulation; returns a handle that resolves to
    /// the task's output.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = self.state();
        let live = state.live_tasks.get() + 1;
        state.live_tasks.set(live);
        let stats = &state.stats;
        stats.spawned.set(stats.spawned.get() + 1);
        if live as u64 > stats.peak_live.get() {
            stats.peak_live.set(live as u64);
        }

        let slot: Rc<RefCell<JoinSlot<F::Output>>> = Rc::new(RefCell::new(JoinSlot::default()));
        let slot2 = Rc::clone(&slot);
        let wrapped: LocalBoxFuture = Box::pin(async move {
            let out = fut.await;
            let mut s = slot2.borrow_mut();
            s.value = Some(out);
            if let Some(w) = s.waiter.take() {
                w.wake();
            }
        });
        let id = state.tasks.borrow_mut().insert(Task {
            fut: Some(wrapped),
            waker: None,
        });
        state.ready.borrow_mut().push_back(id);
        JoinHandle { slot }
    }

    /// Sleep for a span of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        Sleep {
            ctx: self.clone(),
            deadline: self.now().saturating_add(d),
            timer: None,
        }
    }

    /// Sleep until an absolute virtual instant (no-op if already past).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            ctx: self.clone(),
            deadline,
            timer: None,
        }
    }

    /// Yield once, letting every other ready task run before resuming.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Access the simulation RNG. All model randomness must flow through
    /// here to preserve determinism.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SimRng) -> T) -> T {
        let state = self.state();
        let mut hooks = state.hooks.borrow_mut();
        f(&mut hooks.rng)
    }

    fn register_timer(&self, deadline: SimTime, waker: Waker) -> TimerKey {
        let state = self.state();
        let stats = &state.stats;
        stats.timer_inserts.set(stats.timer_inserts.get() + 1);
        let key = state.timers.borrow_mut().insert(deadline, waker);
        key
    }

    /// Refresh the waker of a pending timer; false when the timer already
    /// fired or was cancelled (its key went stale).
    fn refresh_timer(&self, key: TimerKey, waker: Waker) -> bool {
        self.state().timers.borrow_mut().update_payload(key, waker)
    }

    /// Cancel a pending timer. Tolerates stale keys and a dropped
    /// simulation — [`Sleep`] calls this from `Drop`.
    fn cancel_timer(&self, key: TimerKey) {
        if let Some(state) = self.state.upgrade() {
            if state.timers.borrow_mut().cancel(key).is_some() {
                let stats = &state.stats;
                stats.timer_cancels.set(stats.timer_cancels.get() + 1);
            }
        }
    }
}

struct JoinSlot<T> {
    value: Option<T>,
    waiter: Option<Waker>,
}

impl<T> Default for JoinSlot<T> {
    fn default() -> Self {
        JoinSlot {
            value: None,
            waiter: None,
        }
    }
}

/// Handle resolving to a spawned task's output. Awaiting it yields the
/// value; [`JoinHandle::try_take`] retrieves it after the simulation ran.
pub struct JoinHandle<T> {
    slot: Rc<RefCell<JoinSlot<T>>>,
}

impl<T> JoinHandle<T> {
    /// Take the task output if the task has completed.
    pub fn try_take(&self) -> Option<T> {
        self.slot.borrow_mut().value.take()
    }

    /// True once the task has completed (and the value was not taken yet).
    pub fn is_finished(&self) -> bool {
        self.slot.borrow().value.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut slot = self.slot.borrow_mut();
        if let Some(v) = slot.value.take() {
            Poll::Ready(v)
        } else {
            slot.waiter = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`SimCtx::sleep`].
///
/// Holds a [`TimerKey`] into the cancellation-aware timer heap: dropping
/// or completing the sleep removes the entry immediately, so abandoned
/// sleeps (the losing arm of a [`race`], a speculative re-execution that
/// was beaten) cost the scheduler nothing.
pub struct Sleep {
    ctx: SimCtx,
    deadline: SimTime,
    timer: Option<TimerKey>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.ctx.now() >= self.deadline {
            if let Some(key) = self.timer.take() {
                self.ctx.cancel_timer(key); // no-op if it just fired
            }
            return Poll::Ready(());
        }
        // Spurious wakes and waker migration across combinators both stay
        // correct: refresh the pending entry's waker in place, or register
        // anew when the entry is gone (first poll, or fired while the task
        // was woken by something else).
        if let Some(key) = self.timer {
            if self.ctx.refresh_timer(key, cx.waker().clone()) {
                return Poll::Pending;
            }
            self.timer = None;
        }
        let deadline = self.deadline;
        let key = self.ctx.register_timer(deadline, cx.waker().clone());
        self.timer = Some(key);
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(key) = self.timer.take() {
            self.ctx.cancel_timer(key);
        }
    }
}

/// Future returned by [`SimCtx::yield_now`]: pending exactly once.
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Result of [`race`]: which future finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future won.
    Left(A),
    /// The second future won.
    Right(B),
}

/// Run two futures concurrently; resolve with the first to finish and drop
/// the loser. Ties (both ready on the same poll) go to the left.
pub fn race<A: Future, B: Future>(a: A, b: B) -> Race<A, B> {
    Race { a, b }
}

/// Future returned by [`race`].
pub struct Race<A, B> {
    a: A,
    b: B,
}

impl<A: Future, B: Future> Future for Race<A, B> {
    type Output = Either<A::Output, B::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: `a` and `b` are structurally pinned — never moved out of
        // `self`, which is pinned for our whole lifetime.
        let this = unsafe { self.get_unchecked_mut() };
        let a = unsafe { Pin::new_unchecked(&mut this.a) };
        if let Poll::Ready(v) = a.poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        let b = unsafe { Pin::new_unchecked(&mut this.b) };
        if let Poll::Ready(v) = b.poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

/// Await all handles, collecting outputs in order.
pub async fn join_all<T>(handles: Vec<JoinHandle<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

/// Await the first of `handles` to complete; the winner is removed from
/// the vector and `(index, value)` returned (index as of removal time).
/// Ties go to the lowest index. The remaining handles are untouched — their
/// tasks keep running. Panics when awaited with an empty vector.
pub fn first_completed<T>(handles: &mut Vec<JoinHandle<T>>) -> FirstCompleted<'_, T> {
    FirstCompleted { handles }
}

/// Future returned by [`first_completed`].
pub struct FirstCompleted<'a, T> {
    handles: &'a mut Vec<JoinHandle<T>>,
}

impl<T> Future for FirstCompleted<'_, T> {
    type Output = (usize, T);
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<(usize, T)> {
        // Unpin: the struct holds only a mutable reference.
        let this = self.get_mut();
        assert!(
            !this.handles.is_empty(),
            "first_completed awaited with no handles"
        );
        let won = (0..this.handles.len()).find(|&i| this.handles[i].slot.borrow().value.is_some());
        if let Some(i) = won {
            let h = this.handles.remove(i);
            let v = h
                .slot
                .borrow_mut()
                .value
                .take()
                .expect("winner had a value");
            return Poll::Ready((i, v));
        }
        for h in this.handles.iter() {
            h.slot.borrow_mut().waiter = Some(cx.waker().clone());
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances_by_sleep() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.sleep(SimDuration::from_millis(100)).await;
            ctx.now()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), SimTime::from_nanos(100_000_000));
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // deliberately measures real time
    fn no_wall_clock_cost_for_long_sleeps() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.sleep(SimDuration::from_days(365)).await;
        });
        let t0 = std::time::Instant::now();
        let end = sim.run();
        assert_eq!(end, SimTime::from_nanos(365 * 86_400 * 1_000_000_000));
        assert!(t0.elapsed().as_millis() < 100);
    }

    #[test]
    fn concurrent_tasks_interleave_in_time_order() {
        let mut sim = Sim::new(1);
        let log: Rc<RefCell<Vec<(u64, &str)>>> = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let ctx = sim.ctx();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_millis(delay)).await;
                log.borrow_mut().push((ctx.now().as_nanos(), name));
            });
        }
        sim.run();
        let log = log.borrow();
        let names: Vec<&str> = log.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let mut sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let ctx = sim.ctx();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_millis(7)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_and_join() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let inner = ctx.spawn({
                let ctx = ctx.clone();
                async move {
                    ctx.sleep(SimDuration::from_secs(1)).await;
                    21u32
                }
            });
            inner.await * 2
        });
        sim.run();
        assert_eq!(h.try_take(), Some(42));
    }

    #[test]
    fn join_all_collects_in_order() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let handles: Vec<_> = (0..10u64)
                .map(|i| {
                    let ctx = ctx.clone();
                    ctx.clone().spawn(async move {
                        // Reverse delays: later-indexed tasks finish first.
                        ctx.sleep(SimDuration::from_millis(10 - i)).await;
                        i
                    })
                })
                .collect();
            join_all(handles).await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            ctx.sleep(SimDuration::from_secs(100)).await;
        });
        let t = sim.run_until(SimTime::from_nanos(5_000_000_000));
        assert!(t.as_nanos() <= 5_000_000_000);
        assert!(!h.is_finished());
        sim.run();
        assert!(h.is_finished());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detection() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        sim.spawn(async move {
            // A join handle for a task that never gets spawned elsewhere:
            // block forever on a channel with no sender activity.
            let (_tx, mut rx) = crate::sync::channel::<()>(&ctx);
            // keep _tx alive so recv never resolves with None
            let _keep = _tx.clone();
            rx.recv().await;
        });
        sim.run();
    }

    #[test]
    fn race_picks_earlier_future() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let slow = ctx.sleep(SimDuration::from_secs(10));
            let fast = ctx.sleep(SimDuration::from_millis(5));
            match race(slow, fast).await {
                Either::Left(()) => "slow",
                Either::Right(()) => "fast",
            }
        });
        sim.run();
        assert_eq!(h.try_take(), Some("fast"));
    }

    #[test]
    fn race_loser_is_cancelled() {
        // After the race resolves, the losing sleep must not keep the
        // simulation alive: total runtime stays at the winner's deadline.
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        sim.spawn(async move {
            let _ = race(
                ctx.sleep(SimDuration::from_secs(100)),
                ctx.sleep(SimDuration::from_millis(1)),
            )
            .await;
        });
        let end = sim.run();
        assert!(end.as_secs_f64() < 1.0, "end {end}");
    }

    #[test]
    fn cancelled_sleep_leaves_no_timer_entry() {
        // The loser of a race is removed from the timer heap immediately —
        // not tombstoned until its deadline would have arrived.
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        sim.spawn(async move {
            let _ = race(
                ctx.sleep(SimDuration::from_secs(100)),
                ctx.sleep(SimDuration::from_millis(1)),
            )
            .await;
        });
        sim.run();
        assert!(
            sim.state.timers.borrow().is_empty(),
            "cancelled sleep left an entry in the timer heap"
        );
    }

    #[test]
    fn task_ids_are_not_resurrected_by_slot_reuse() {
        // A completed task's slot is reused by a later spawn; the stale
        // wake for the finished task must miss (generation check), and the
        // new task must still run.
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let first = ctx.spawn(async { 1u32 });
            let v1 = first.await;
            // The first task's slot is free now; this spawn reuses it.
            let second = ctx.spawn(async { 2u32 });
            v1 + second.await
        });
        sim.run();
        assert_eq!(h.try_take(), Some(3));
    }

    #[test]
    fn first_completed_returns_earliest_and_leaves_rest_running() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let mut handles: Vec<_> = [30u64, 10, 20]
                .iter()
                .map(|&d| {
                    let ctx = ctx.clone();
                    ctx.clone().spawn(async move {
                        ctx.sleep(SimDuration::from_millis(d)).await;
                        d
                    })
                })
                .collect();
            let (idx, val) = first_completed(&mut handles).await;
            assert_eq!((idx, val), (1, 10));
            assert_eq!(handles.len(), 2);
            let (idx2, val2) = first_completed(&mut handles).await;
            assert_eq!((idx2, val2), (1, 20));
            // The slowest task keeps running even if we drop its handle.
            drop(handles);
            ctx.now()
        });
        let end = sim.run();
        assert_eq!(h.try_take().unwrap(), SimTime::from_nanos(20_000_000));
        // Quiescence waits for the abandoned 30ms task.
        assert_eq!(end, SimTime::from_nanos(30_000_000));
    }

    #[test]
    fn faults_disabled_by_default_and_installable() {
        let sim = Sim::new(5);
        let ctx = sim.ctx();
        assert!(!ctx.faults().enabled());
        let plan = sim.install_faults(crate::faults::FaultConfig {
            invoke_transient_prob: 1.0,
            ..crate::faults::FaultConfig::default()
        });
        assert!(ctx.faults().enabled());
        assert!(ctx.faults().sample_invoke_transient());
        // The outliving handle shares counters with the installed plan.
        assert_eq!(plan.stats().transients, 1);
    }

    #[test]
    fn metrics_disabled_by_default_and_installable() {
        let sim = Sim::new(3);
        assert!(!sim.metrics().enabled());
        assert!(!sim.ctx().metrics().enabled());
        let reg = sim.install_metrics();
        assert!(sim.ctx().metrics().enabled());
        // The outliving handle shares state with the installed registry.
        sim.ctx().metrics().counter("x").inc();
        assert_eq!(reg.counter("x").get(), 1);
    }

    #[test]
    fn executor_self_profile_flushes_on_run() {
        let mut sim = Sim::new(4);
        let reg = sim.install_metrics();
        let ctx = sim.ctx();
        sim.spawn(async move {
            // One cancelled timer (race loser) and a few fired ones.
            let _ = race(
                ctx.sleep(SimDuration::from_secs(100)),
                ctx.sleep(SimDuration::from_millis(1)),
            )
            .await;
            ctx.sleep(SimDuration::from_millis(1)).await;
        });
        sim.run();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["sim.executor.tasks_spawned"], 1);
        assert_eq!(snap.counters["sim.executor.tasks_completed"], 1);
        assert!(snap.counters["sim.executor.polls"] >= 3);
        assert_eq!(snap.counters["sim.timer.cancels"], 1);
        assert!(snap.counters["sim.timer.fires"] >= 2);
        assert!(snap.counters["sim.timer.inserts"] >= 3);
        assert!(snap.gauges["sim.executor.peak_live_tasks"] >= 1.0);
        // Flush is idempotent: running again without new work leaves the
        // same values.
        let before = snap.counters["sim.executor.polls"];
        sim.run();
        assert_eq!(reg.snapshot().counters["sim.executor.polls"], before);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn trace(seed: u64) -> Vec<u64> {
            let mut sim = Sim::new(seed);
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..20 {
                let ctx = sim.ctx();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    let d = ctx.with_rng(|r| r.gen_range_u64(1, 1000));
                    ctx.sleep(SimDuration::from_micros(d)).await;
                    log.borrow_mut().push(ctx.now().as_nanos());
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(trace(7), trace(7));
        assert_ne!(trace(7), trace(8));
    }

    #[test]
    fn yield_now_lets_others_run() {
        let mut sim = Sim::new(1);
        let flag = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&flag);
        let ctx = sim.ctx();
        let ctx2 = sim.ctx();
        sim.spawn(async move {
            ctx.yield_now().await;
            // By now the other task (spawned after us) must have run.
            assert!(f2.get());
        });
        sim.spawn(async move {
            let _ = ctx2; // same tick
            flag.set(true);
        });
        sim.run();
    }
}
