//! Generation-indexed slab: the executor's task table.
//!
//! A `HashMap<TaskId, _>` puts a hash + probe on every poll of every task.
//! The slab replaces that with a plain `Vec` indexed by the low 32 bits of
//! the key; freed slots go on a free list and are reused for later
//! insertions. The high 32 bits carry a per-slot *generation*, bumped on
//! every removal, so a stale key (a wake for a completed task whose slot
//! was since reused) misses instead of resolving to the wrong task.
//!
//! Keys are handed out deterministically: the free list is LIFO, so the
//! same insert/remove sequence always yields the same key sequence —
//! a property the determinism sweep relies on (task ids are folded into
//! the sanitizer digest).

/// A slab key: `generation << 32 | index`. Also the executor's `TaskId`.
pub type SlabKey = u64;

const INDEX_BITS: u32 = 32;
const INDEX_MASK: u64 = (1 << INDEX_BITS) - 1;

/// Split a key into `(index, generation)`.
#[inline]
fn split(key: SlabKey) -> (usize, u32) {
    ((key & INDEX_MASK) as usize, (key >> INDEX_BITS) as u32)
}

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// Vec-backed storage with generation-checked keys and free-list reuse.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, reusing a freed slot when one is available.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.value.is_none(), "free-list slot was occupied");
                slot.value = Some(value);
                ((slot.generation as u64) << INDEX_BITS) | index as u64
            }
            None => {
                let index = self.slots.len();
                assert!(index <= INDEX_MASK as usize, "slab index overflow");
                self.slots.push(Slot {
                    generation: 0,
                    value: Some(value),
                });
                index as u64
            }
        }
    }

    /// Remove and return the value at `key`, or `None` when the key is
    /// stale (slot freed, possibly reused under a newer generation).
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let (index, generation) = split(key);
        let slot = self.slots.get_mut(index)?;
        if slot.generation != generation || slot.value.is_none() {
            return None;
        }
        let value = slot.value.take();
        // Bump the generation on removal so every stale key misses.
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(index as u32);
        self.len -= 1;
        value
    }

    /// Shared access to the value at `key`, if it is live.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        let (index, generation) = split(key);
        let slot = self.slots.get(index)?;
        if slot.generation != generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Exclusive access to the value at `key`, if it is live.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        let (index, generation) = split(key);
        let slot = self.slots.get_mut(index)?;
        if slot.generation != generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// True when `key` resolves to a live value.
    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None, "double remove misses");
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn reuse_bumps_generation() {
        let mut slab = Slab::new();
        let a = slab.insert(1u32);
        slab.remove(a);
        let b = slab.insert(2u32);
        // Same index, different generation → distinct keys, stale key misses.
        assert_eq!(a & INDEX_MASK, b & INDEX_MASK);
        assert_ne!(a, b);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get(b), Some(&2));
    }

    #[test]
    fn key_sequence_is_deterministic() {
        let run = || {
            let mut slab = Slab::new();
            let mut keys = Vec::new();
            let k0 = slab.insert(0);
            let k1 = slab.insert(1);
            keys.push(k0);
            keys.push(k1);
            slab.remove(k0);
            keys.push(slab.insert(2));
            slab.remove(k1);
            keys.push(slab.insert(3));
            keys
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut slab = Slab::new();
        let k = slab.insert(10u64);
        *slab.get_mut(k).unwrap() += 5;
        assert_eq!(slab.get(k), Some(&15));
    }
}
