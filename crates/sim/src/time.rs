//! Virtual time primitives.
//!
//! The simulation clock is a monotonically non-decreasing count of
//! nanoseconds since simulation start. Wall-clock time never enters the
//! kernel: experiments over simulated hours or days complete in
//! milliseconds of real time, and two runs with the same seed produce
//! identical timelines.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is later.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The instant `d` after `self`, saturating at `SimTime::MAX`.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000_000)
    }

    /// Construct from whole days.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400 * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a float factor, clamping to the representable range.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * f)
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_sub(other.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 86_400_000_000_000 {
            write!(f, "{:.2}d", ns as f64 / 86_400e9)
        } else if ns >= 3_600_000_000_000 {
            write!(f, "{:.2}h", ns as f64 / 3_600e9)
        } else if ns >= 60_000_000_000 {
            write!(f, "{:.2}min", ns as f64 / 60e9)
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        assert_eq!((t + d).as_nanos(), 150);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - (t + d), SimDuration::ZERO, "saturating");
        assert_eq!((d * 3).as_nanos(), 150);
        assert_eq!((d / 2).as_nanos(), 25);
    }

    #[test]
    fn float_round_trips() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn display_humanizes() {
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "1.50min");
        assert_eq!(format!("{}", SimDuration::from_hours(36)), "1.50d");
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(b.duration_since(a).as_nanos(), 20);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
    }
}
