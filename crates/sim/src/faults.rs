//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a per-run source of *injected* failures that
//! infrastructure models query at well-defined decision points: should this
//! invocation fail transiently, should this sandbox crash mid-run, should
//! this cold start be pathologically slow, should this storage request be
//! throttled or time out. Injected faults sit on top of the capacity-driven
//! failures the models already produce (admission throttling, bandwidth
//! timeouts); they exist to exercise retry, speculation, and failure
//! accounting paths that a healthy simulation never reaches.
//!
//! ## Determinism contract
//!
//! The plan draws from its own [`SimRng`] stream, seeded from the
//! simulation seed XOR a fixed salt. Two consequences:
//!
//! * Same seed + same [`FaultConfig`] ⇒ the same faults fire at the same
//!   decision points, so sanitizer digests of faulted runs are reproducible.
//! * A **disabled** plan (the default) draws nothing: enabling the
//!   subsystem changes zero bytes of behavior for runs that never install
//!   a plan, and all pre-existing tests are unaffected.
//!
//! Sampling order is the (deterministic) order in which components reach
//! their decision points — there is no wall-clock or ambient entropy
//! anywhere in this module.

use crate::rng::SimRng;
use crate::time::SimDuration;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Salt XORed into the simulation seed for the plan's private RNG stream,
/// so fault sampling never perturbs the main model stream.
const FAULT_SEED_SALT: u64 = 0x5EED_FAB7_0000_0001;

/// Marker message carried by injected transient handler failures. Engine
/// retry layers may match on it to distinguish infrastructure-transient
/// errors (always worth retrying) from deterministic application errors.
pub const INJECTED_FAILURE: &str = "injected transient fault";

/// Probabilities and shape parameters for a fault plan. All probabilities
/// are per-decision (per invocation, per cold start, per storage request)
/// and clamped to `[0, 1]` at sampling time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability an invocation's handler result is replaced with a
    /// transient failure (the handler still runs and is billed in full).
    pub invoke_transient_prob: f64,
    /// Probability a sandbox crash is armed for an invocation. The crash
    /// point is drawn uniformly from `[0, crash_horizon_secs)`; it fires
    /// only if the handler is still running at that point.
    pub sandbox_crash_prob: f64,
    /// Horizon (seconds into the handler's run) for sampled crash points.
    pub crash_horizon_secs: f64,
    /// Probability a cold start's init time is multiplied by
    /// `coldstart_spike_factor`.
    pub coldstart_spike_prob: f64,
    /// Multiplier applied to a spiked cold start's sampled init time.
    pub coldstart_spike_factor: f64,
    /// Probability a storage request is rejected with an injected
    /// `Throttled` before reaching the service.
    pub storage_throttle_prob: f64,
    /// Probability a storage request is swallowed whole — the client sees
    /// only its own timeout.
    pub storage_timeout_prob: f64,
}

impl Default for FaultConfig {
    /// All probabilities zero: an installed-but-default plan injects
    /// nothing (shape parameters keep sensible values).
    fn default() -> Self {
        FaultConfig {
            invoke_transient_prob: 0.0,
            sandbox_crash_prob: 0.0,
            crash_horizon_secs: 2.0,
            coldstart_spike_prob: 0.0,
            coldstart_spike_factor: 5.0,
            storage_throttle_prob: 0.0,
            storage_timeout_prob: 0.0,
        }
    }
}

impl FaultConfig {
    /// A compute-side mix at a single `rate`: transient invoke failures at
    /// `rate`, sandbox crashes at `rate / 2`, coldstart spikes at `rate`.
    pub fn compute(rate: f64) -> Self {
        FaultConfig {
            invoke_transient_prob: rate,
            sandbox_crash_prob: rate / 2.0,
            coldstart_spike_prob: rate,
            ..FaultConfig::default()
        }
    }
}

/// Kind of fault injected into a storage request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Reject the request as throttled (after the service's reject latency).
    Throttle,
    /// Swallow the request; the caller observes its own timeout.
    Timeout,
}

/// Counters of faults sampled by a plan, for post-run reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient invocation failures injected.
    pub transients: u64,
    /// Sandbox crashes armed (a crash fires only if the handler is still
    /// running at the sampled crash point).
    pub crashes_armed: u64,
    /// Cold starts spiked.
    pub coldstart_spikes: u64,
    /// Storage requests rejected with an injected throttle.
    pub storage_throttles: u64,
    /// Storage requests swallowed into an injected timeout.
    pub storage_timeouts: u64,
}

struct PlanInner {
    config: FaultConfig,
    rng: RefCell<SimRng>,
    transients: Cell<u64>,
    crashes_armed: Cell<u64>,
    coldstart_spikes: Cell<u64>,
    storage_throttles: Cell<u64>,
    storage_timeouts: Cell<u64>,
}

/// A seeded, shareable fault plan. Disabled by default (all sampling
/// methods answer "no fault" without touching any RNG); install one on a
/// simulation via `Sim::install_faults` to activate injection.
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Option<Rc<PlanInner>>,
}

impl FaultPlan {
    /// A plan that injects nothing and draws nothing.
    pub fn disabled() -> Self {
        FaultPlan { inner: None }
    }

    /// Build an active plan for the given simulation seed and config.
    /// (Called by `Sim::install_faults`; the plan's RNG stream is salted so
    /// it never interferes with the simulation's main stream.)
    pub fn new(sim_seed: u64, config: FaultConfig) -> Self {
        FaultPlan {
            inner: Some(Rc::new(PlanInner {
                rng: RefCell::new(SimRng::new(sim_seed ^ FAULT_SEED_SALT)),
                config,
                transients: Cell::new(0),
                crashes_armed: Cell::new(0),
                coldstart_spikes: Cell::new(0),
                storage_throttles: Cell::new(0),
                storage_timeouts: Cell::new(0),
            })),
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn sample(
        &self,
        prob: impl Fn(&FaultConfig) -> f64,
        counter: impl Fn(&PlanInner) -> &Cell<u64>,
    ) -> bool {
        let Some(inner) = self.inner.as_deref() else {
            return false;
        };
        let p = prob(&inner.config).clamp(0.0, 1.0);
        if p <= 0.0 {
            return false;
        }
        let hit = inner.rng.borrow_mut().gen_bool(p);
        if hit {
            let c = counter(inner);
            c.set(c.get() + 1);
        }
        hit
    }

    /// Should this invocation's handler result be replaced with a transient
    /// failure? (The handler still runs and is billed in full.)
    pub fn sample_invoke_transient(&self) -> bool {
        self.sample(|c| c.invoke_transient_prob, |i| &i.transients)
    }

    /// Arm a sandbox crash for this invocation: `Some(delay)` means the
    /// sandbox dies `delay` into the handler's run (if still running).
    pub fn sample_sandbox_crash(&self) -> Option<SimDuration> {
        if !self.sample(|c| c.sandbox_crash_prob, |i| &i.crashes_armed) {
            return None;
        }
        let inner = self.inner.as_ref().expect("sampled on a disabled plan");
        let horizon = inner.config.crash_horizon_secs.max(0.0);
        let at = inner.rng.borrow_mut().gen_range_f64(0.0, horizon.max(1e-9));
        Some(SimDuration::from_secs_f64(at))
    }

    /// Should this cold start be spiked? Returns the multiplier to apply
    /// to the sampled init time.
    pub fn sample_coldstart_spike(&self) -> Option<f64> {
        if self.sample(|c| c.coldstart_spike_prob, |i| &i.coldstart_spikes) {
            let inner = self.inner.as_ref().expect("sampled on a disabled plan");
            Some(inner.config.coldstart_spike_factor.max(1.0))
        } else {
            None
        }
    }

    /// Should this storage request be faulted, and how? At most one kind
    /// fires per request; throttle is sampled before timeout.
    pub fn sample_storage_fault(&self) -> Option<StorageFault> {
        if self.sample(|c| c.storage_throttle_prob, |i| &i.storage_throttles) {
            return Some(StorageFault::Throttle);
        }
        if self.sample(|c| c.storage_timeout_prob, |i| &i.storage_timeouts) {
            return Some(StorageFault::Timeout);
        }
        None
    }

    /// Counters of everything sampled so far.
    pub fn stats(&self) -> FaultStats {
        match &self.inner {
            None => FaultStats::default(),
            Some(i) => FaultStats {
                transients: i.transients.get(),
                crashes_armed: i.crashes_armed.get(),
                coldstart_spikes: i.coldstart_spikes.get(),
                storage_throttles: i.storage_throttles.get(),
                storage_timeouts: i.storage_timeouts.get(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_injects_nothing() {
        let plan = FaultPlan::disabled();
        assert!(!plan.enabled());
        for _ in 0..100 {
            assert!(!plan.sample_invoke_transient());
            assert!(plan.sample_sandbox_crash().is_none());
            assert!(plan.sample_coldstart_spike().is_none());
            assert!(plan.sample_storage_fault().is_none());
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn zero_probability_plan_draws_nothing() {
        // A default (all-zero) config must not consume RNG draws, so its
        // sampling sequence is independent of call counts.
        let plan = FaultPlan::new(7, FaultConfig::default());
        for _ in 0..50 {
            assert!(!plan.sample_invoke_transient());
            assert!(plan.sample_storage_fault().is_none());
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn certain_faults_always_fire_and_count() {
        let plan = FaultPlan::new(
            3,
            FaultConfig {
                invoke_transient_prob: 1.0,
                coldstart_spike_prob: 1.0,
                coldstart_spike_factor: 4.0,
                storage_throttle_prob: 1.0,
                ..FaultConfig::default()
            },
        );
        for _ in 0..10 {
            assert!(plan.sample_invoke_transient());
            assert_eq!(plan.sample_coldstart_spike(), Some(4.0));
            assert_eq!(plan.sample_storage_fault(), Some(StorageFault::Throttle));
        }
        let s = plan.stats();
        assert_eq!(s.transients, 10);
        assert_eq!(s.coldstart_spikes, 10);
        assert_eq!(s.storage_throttles, 10);
        assert_eq!(s.storage_timeouts, 0);
    }

    #[test]
    fn crash_points_stay_within_horizon() {
        let plan = FaultPlan::new(
            9,
            FaultConfig {
                sandbox_crash_prob: 1.0,
                crash_horizon_secs: 3.0,
                ..FaultConfig::default()
            },
        );
        for _ in 0..50 {
            let at = plan.sample_sandbox_crash().expect("crash always armed");
            assert!(at.as_secs_f64() < 3.0);
        }
        assert_eq!(plan.stats().crashes_armed, 50);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let cfg = FaultConfig {
            invoke_transient_prob: 0.3,
            storage_throttle_prob: 0.2,
            storage_timeout_prob: 0.1,
            ..FaultConfig::default()
        };
        let draw = |seed: u64| {
            let plan = FaultPlan::new(seed, cfg.clone());
            let mut seq = Vec::new();
            for _ in 0..200 {
                seq.push((plan.sample_invoke_transient(), plan.sample_storage_fault()));
            }
            seq
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn fault_stream_is_independent_of_main_rng() {
        // The plan's stream is salted: it must differ from the main stream
        // a model would see for the same seed.
        let mut main = SimRng::new(11);
        let plan = FaultPlan::new(
            11,
            FaultConfig {
                invoke_transient_prob: 0.5,
                ..FaultConfig::default()
            },
        );
        let main_seq: Vec<bool> = (0..64).map(|_| main.gen_bool(0.5)).collect();
        let plan_seq: Vec<bool> = (0..64).map(|_| plan.sample_invoke_transient()).collect();
        assert_ne!(main_seq, plan_seq);
    }
}
