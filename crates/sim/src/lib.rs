//! # skyrise-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the Skyrise evaluation platform: a single-threaded
//! async executor whose clock is *virtual*. Infrastructure models (networks,
//! storage services, FaaS platforms) are ordinary `async fn`s that sleep on
//! the virtual clock; a simulated multi-day experiment completes in
//! milliseconds and is bit-for-bit reproducible from its seed.
//!
//! ## Modules
//! * [`executor`] — the [`Sim`] event loop, task spawning, virtual sleep
//! * [`time`] — [`SimTime`] / [`SimDuration`]
//! * [`rng`] — seeded RNG and heavy-tailed latency distributions
//! * [`sync`] — channels, semaphores, events, wait groups
//! * [`metrics`] — interval throughput series, latency histograms, stats
//! * [`trace`] — virtual-time spans/events, Chrome-trace + JSONL export
//! * [`sanitizer`] — runtime determinism checks + per-event state digest
//! * [`faults`] — seeded fault-injection plan queried by the models

#![warn(missing_docs)]

pub mod executor;
pub mod faults;
pub mod metrics;
pub mod rng;
pub mod sanitizer;
pub mod sync;
pub mod time;
pub mod trace;

pub use executor::{first_completed, join_all, race, Either, JoinHandle, Sim, SimCtx};
pub use faults::{FaultConfig, FaultPlan, FaultStats, StorageFault};
pub use metrics::{Histogram, HistogramSummary, IntervalSeries};
pub use rng::{LatencyDist, SimRng};
pub use sanitizer::{DigestCheckpoint, Sanitizer, SanitizerReport};
pub use time::{SimDuration, SimTime};
pub use trace::{
    chrome_trace_json_multi, jsonl_multi, AttrValue, EventKind, Span, TraceEvent, Tracer,
};

/// Bytes in one kibibyte.
pub const KIB: u64 = 1024;
/// Bytes in one mebibyte.
pub const MIB: u64 = 1024 * 1024;
/// Bytes in one gibibyte.
pub const GIB: u64 = 1024 * 1024 * 1024;
