//! # skyrise-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the Skyrise evaluation platform: a single-threaded
//! async executor whose clock is *virtual*. Infrastructure models (networks,
//! storage services, FaaS platforms) are ordinary `async fn`s that sleep on
//! the virtual clock; a simulated multi-day experiment completes in
//! milliseconds and is bit-for-bit reproducible from its seed.
//!
//! ## Modules
//! * [`executor`] — the [`Sim`] event loop, task spawning, virtual sleep
//! * [`time`] — [`SimTime`] / [`SimDuration`]
//! * [`rng`] — seeded RNG and heavy-tailed latency distributions
//! * [`sync`] — channels, semaphores, events, wait groups
//! * [`metrics`] — interval throughput series, latency histograms, stats
//! * [`telemetry`] — deterministic metric registry (counters, gauges,
//!   latency sketches, utilization timelines) + Prometheus/JSONL export
//! * [`trace`] — virtual-time spans/events, Chrome-trace + JSONL export
//! * [`sanitizer`] — runtime determinism checks + per-event state digest
//! * [`faults`] — seeded fault-injection plan queried by the models
//! * [`slab`] / [`timer_heap`] — the executor's generation-indexed task
//!   table and cancellation-aware timer queue (exposed for oracle tests
//!   and the `sim_bench` microbenchmark)

#![warn(missing_docs)]

pub mod executor;
pub mod faults;
pub mod metrics;
pub mod rng;
pub mod sanitizer;
pub mod slab;
pub mod sync;
pub mod telemetry;
pub mod time;
pub mod timer_heap;
pub mod trace;

pub use executor::{first_completed, join_all, race, Either, JoinHandle, Sim, SimCtx};
pub use faults::{FaultConfig, FaultPlan, FaultStats, StorageFault};
pub use metrics::{Histogram, HistogramSummary, IntervalSeries};
pub use rng::{LatencyDist, SimRng};
pub use sanitizer::{DigestCheckpoint, Sanitizer, SanitizerReport};
pub use slab::{Slab, SlabKey};
pub use telemetry::{
    Counter, Gauge, HistogramHandle, MetricRegistry, MetricsSnapshot, TimelineHandle,
    TimelineSnapshot,
};
pub use time::{SimDuration, SimTime};
pub use timer_heap::{TimerHeap, TimerKey};
pub use trace::{
    chrome_trace_json_multi, jsonl_multi, AttrValue, EventKind, Span, TraceEvent, Tracer,
};

/// Bytes in one kibibyte.
pub const KIB: u64 = 1024;
/// Bytes in one mebibyte.
pub const MIB: u64 = 1024 * 1024;
/// Bytes in one gibibyte.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// 64-bit FNV-1a offset basis. Single source of truth for every FNV-1a
/// hash in the workspace (the sanitizer's state digest, the engine's
/// shuffle partition hash) so the constants cannot silently diverge.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// 64-bit FNV-1a prime (2^40 + 2^8 + 0xb3).
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold bytes into a running 64-bit FNV-1a hash.
#[inline]
pub fn fnv1a64_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// 64-bit FNV-1a hash of a byte slice.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_fold(FNV64_OFFSET, bytes)
}

#[cfg(test)]
mod fnv_tests {
    use super::*;

    /// Pin the published FNV-1a 64 test vectors so neither constant can
    /// regress (the engine shipped with a truncated prime once).
    #[test]
    fn fnv1a64_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fold_is_streaming() {
        let whole = fnv1a64(b"foobar");
        let split = fnv1a64_fold(fnv1a64(b"foo"), b"bar");
        assert_eq!(whole, split);
    }
}
