//! Deterministic fleet telemetry: a named-metric registry shared by every
//! subsystem of a simulation.
//!
//! [`MetricRegistry`] hands out cheap handles onto named **counters**
//! (monotonic `u64` sums), **gauges** (`f64` levels with peak tracking),
//! **histograms** (the log-bucketed [`Histogram`] of [`crate::metrics`],
//! reported as p50/p95/p99/p999 latency sketches), and **timelines**
//! (utilization-over-virtual-time series built on [`IntervalSeries`]).
//!
//! The registry follows the same discipline as the tracer, sanitizer, and
//! fault plan (DESIGN.md §10):
//!
//! * **handle pattern** — a registry is an `Option<Rc<State>>`; a disabled
//!   registry hands out disabled handles and every operation on them is a
//!   branch on `None`, so simulations that don't ask for telemetry pay
//!   nothing;
//! * **cached handles** — subsystems resolve their metric names once at
//!   construction ([`MetricRegistry::counter`] and friends intern the
//!   name), so hot paths increment a `Cell` instead of hashing a string;
//! * **determinism** — all state is `BTreeMap`-ordered and fed only by
//!   virtual-time events, so a [`MetricsSnapshot`] serializes to the same
//!   bytes on every same-seed run, at any `--jobs` count. The snapshot's
//!   [`digest`](MetricsSnapshot::digest) is folded into the sanitizer
//!   digest by the bench harness, making the determinism sweep prove it.
//!
//! Naming convention: `subsystem.object.metric`, e.g.
//! `faas.sandbox.cold_starts`, `storage.s3_standard.op_secs`,
//! `net.fabric.throttle_onsets`. Dots become underscores in the
//! Prometheus exposition.

use crate::metrics::{Histogram, IntervalSeries};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Cap on exported timeline points: snapshots halve a timeline's
/// resolution (pair-summing adjacent windows) until it fits.
const MAX_TIMELINE_POINTS: usize = 512;

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A monotonic counter handle. Cheap to clone; all clones and the registry
/// observe the same cell. Disabled handles are no-ops.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Rc<Cell<u64>>>);

impl Counter {
    /// A no-op counter (what a disabled registry hands out).
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// True when backed by a live registry.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.set(c.get() + n);
        }
    }

    /// Overwrite with an absolute value. For sources that keep their own
    /// running total (e.g. the executor's poll count) and flush it into
    /// the registry at the end of a run — idempotent across flushes.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.set(v);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: Cell<f64>,
    peak: Cell<f64>,
}

/// A gauge handle: an instantaneous level (pool occupancy, requests in
/// flight) with automatic peak tracking. Snapshots export the **peak**,
/// which merges cleanly (max) across simulations and harness workers;
/// levels must stay finite and non-negative.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Rc<GaugeCell>>);

impl Gauge {
    /// A no-op gauge.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// True when backed by a live registry.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Set the current level (and raise the peak if exceeded).
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.value.set(v);
            if v > g.peak.get() {
                g.peak.set(v);
            }
        }
    }

    /// Adjust the current level by `delta`.
    #[inline]
    pub fn add(&self, delta: f64) {
        if let Some(g) = &self.0 {
            let v = g.value.get() + delta;
            g.value.set(v);
            if v > g.peak.get() {
                g.peak.set(v);
            }
        }
    }

    /// Current level (0 when disabled).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |g| g.value.get())
    }

    /// Highest level ever set (0 when disabled).
    pub fn peak(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |g| g.peak.get())
    }
}

/// A histogram handle recording positive values (latencies in seconds by
/// convention) into a shared log-bucketed [`Histogram`].
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Rc<RefCell<Histogram>>>);

impl HistogramHandle {
    /// A no-op histogram handle.
    pub fn disabled() -> Self {
        HistogramHandle(None)
    }

    /// True when backed by a live registry.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.borrow_mut().record(v);
        }
    }

    /// Record a [`SimDuration`] in seconds.
    #[inline]
    pub fn record_duration(&self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded values (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.borrow().count())
    }
}

/// A timeline handle accumulating a quantity (bytes, ops) into fixed-width
/// virtual-time windows — the registry's utilization-over-time instrument.
#[derive(Debug, Clone, Default)]
pub struct TimelineHandle(Option<Rc<RefCell<IntervalSeries>>>);

impl TimelineHandle {
    /// A no-op timeline handle.
    pub fn disabled() -> Self {
        TimelineHandle(None)
    }

    /// True when backed by a live registry.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record `amount` at instant `t`.
    #[inline]
    pub fn record(&self, t: SimTime, amount: f64) {
        if let Some(s) = &self.0 {
            s.borrow_mut().record(t, amount);
        }
    }

    /// Spread `amount` uniformly over `[start, end)`.
    #[inline]
    pub fn record_span(&self, start: SimTime, end: SimTime, amount: f64) {
        if let Some(s) = &self.0 {
            s.borrow_mut().record_span(start, end, amount);
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct RegistryState {
    counters: RefCell<BTreeMap<String, Rc<Cell<u64>>>>,
    gauges: RefCell<BTreeMap<String, Rc<GaugeCell>>>,
    histograms: RefCell<BTreeMap<String, Rc<RefCell<Histogram>>>>,
    timelines: RefCell<BTreeMap<String, Rc<RefCell<IntervalSeries>>>>,
}

/// Handle onto a simulation's metric registry. Cheap to clone; a disabled
/// registry hands out disabled metric handles and snapshots to empty.
///
/// Install one per simulation via
/// [`Sim::install_metrics`](crate::Sim::install_metrics); subsystems reach
/// it through [`SimCtx::metrics`](crate::SimCtx::metrics) and cache the
/// handles they need at construction time.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    state: Option<Rc<RegistryState>>,
}

impl MetricRegistry {
    /// An active, empty registry.
    pub fn new() -> Self {
        MetricRegistry {
            state: Some(Rc::new(RegistryState::default())),
        }
    }

    /// A disabled registry: every handle it hands out is a no-op.
    pub fn disabled() -> Self {
        MetricRegistry { state: None }
    }

    /// True when metrics are being collected.
    pub fn enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Resolve (interning on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(
            self.state
                .as_ref()
                .map(|s| Rc::clone(s.counters.borrow_mut().entry(name.to_string()).or_default())),
        )
    }

    /// Resolve (interning on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(
            self.state
                .as_ref()
                .map(|s| Rc::clone(s.gauges.borrow_mut().entry(name.to_string()).or_default())),
        )
    }

    /// Resolve (interning on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(self.state.as_ref().map(|s| {
            Rc::clone(
                s.histograms
                    .borrow_mut()
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Resolve (interning on first use) the timeline named `name`, with
    /// windows of width `interval` starting at virtual time zero. The
    /// first caller's interval wins; later calls reuse the series as-is.
    pub fn timeline(&self, name: &str, interval: SimDuration) -> TimelineHandle {
        TimelineHandle(self.state.as_ref().map(|s| {
            Rc::clone(
                s.timelines
                    .borrow_mut()
                    .entry(name.to_string())
                    .or_insert_with(|| {
                        Rc::new(RefCell::new(IntervalSeries::new(SimTime::ZERO, interval)))
                    }),
            )
        }))
    }

    /// Snapshot every metric into a serializable, mergeable value.
    /// Histograms that never recorded a value are omitted (their min/max
    /// are not yet meaningful); counters and gauges are kept even at zero
    /// so registered-but-idle metrics stay visible.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(s) = &self.state else {
            return MetricsSnapshot::default();
        };
        MetricsSnapshot {
            counters: s
                .counters
                .borrow()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: s
                .gauges
                .borrow()
                .iter()
                .map(|(k, v)| (k.clone(), v.peak.get()))
                .collect(),
            histograms: s
                .histograms
                .borrow()
                .iter()
                .filter(|(_, h)| h.borrow().count() > 0)
                .map(|(k, h)| (k.clone(), h.borrow().clone()))
                .collect(),
            timelines: s
                .timelines
                .borrow()
                .iter()
                .filter(|(_, t)| !t.borrow().totals().is_empty())
                .map(|(k, t)| (k.clone(), TimelineSnapshot::from_series(&t.borrow())))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A downsampled export of a timeline: per-window totals at a (possibly
/// coarsened) window width. Produced by [`MetricRegistry::snapshot`];
/// windows beyond [`MAX_TIMELINE_POINTS`] are pair-summed until the series
/// fits, doubling `interval_secs` each pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimelineSnapshot {
    /// Window width in (virtual) seconds.
    pub interval_secs: f64,
    /// Quantity accumulated per window, from virtual time zero.
    pub points: Vec<f64>,
}

impl TimelineSnapshot {
    /// Downsampled snapshot of a series.
    pub fn from_series(series: &IntervalSeries) -> Self {
        let mut snap = TimelineSnapshot {
            interval_secs: series.interval().as_secs_f64(),
            points: series.totals().to_vec(),
        };
        snap.fit();
        snap
    }

    /// Halve resolution until the series fits the export cap.
    fn fit(&mut self) {
        while self.points.len() > MAX_TIMELINE_POINTS {
            self.halve();
        }
    }

    /// Merge adjacent window pairs, doubling the window width.
    fn halve(&mut self) {
        self.points = self
            .points
            .chunks(2)
            .map(|pair| pair.iter().sum())
            .collect();
        self.interval_secs *= 2.0;
    }

    /// Merge another timeline of the same base width into this one: the
    /// finer side is downsampled until widths agree, then windows add
    /// element-wise.
    pub fn merge(&mut self, other: &TimelineSnapshot) {
        let mut other = other.clone();
        while self.interval_secs < other.interval_secs {
            self.halve();
        }
        while other.interval_secs < self.interval_secs {
            other.halve();
        }
        if other.points.len() > self.points.len() {
            self.points.resize(other.points.len(), 0.0);
        }
        for (a, b) in self.points.iter_mut().zip(&other.points) {
            *a += b;
        }
        self.fit();
    }

    /// Peak per-window rate in units/second.
    pub fn peak_rate(&self) -> f64 {
        self.points
            .iter()
            .fold(0.0f64, |a, &b| a.max(b / self.interval_secs))
    }
}

/// A serializable snapshot of a whole registry. `BTreeMap` keys make the
/// JSON encoding canonical: two equal snapshots serialize to identical
/// bytes, which is what the determinism tests compare and what
/// [`digest`](MetricsSnapshot::digest) hashes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters. Merge: sum.
    pub counters: BTreeMap<String, u64>,
    /// Gauge peaks (high-water marks). Merge: max.
    pub gauges: BTreeMap<String, f64>,
    /// Latency/size histograms. Merge: bucket-wise sum.
    pub histograms: BTreeMap<String, Histogram>,
    /// Utilization timelines. Merge: window-wise sum.
    pub timelines: BTreeMap<String, TimelineSnapshot>,
}

impl MetricsSnapshot {
    /// True when no metric was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.timelines.is_empty()
    }

    /// Fold another snapshot into this one: counters sum, gauges take the
    /// max (peak semantics), histograms and timelines merge. Used to
    /// aggregate across the simulations of one experiment and across the
    /// experiments of a suite.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(0.0);
            if *v > *e {
                *e = *v;
            }
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(Histogram::new)
                .merge(h);
        }
        for (k, t) in &other.timelines {
            match self.timelines.get_mut(k) {
                Some(mine) => mine.merge(t),
                None => {
                    self.timelines.insert(k.clone(), t.clone());
                }
            }
        }
    }

    /// Canonical JSON encoding (BTreeMap key order): byte-identical for
    /// equal snapshots, the unit of comparison in the determinism sweep.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// FNV-1a digest of the canonical encoding. The bench harness folds
    /// this into the sanitizer digest (`observe("telemetry", digest)`) so
    /// nondeterministic telemetry fails the sweep like any other state.
    pub fn digest(&self) -> u64 {
        crate::fnv1a64(self.canonical_json().as_bytes())
    }

    /// JSONL export: one JSON object per metric per line. Histograms are
    /// rendered as summaries with p50/p95/p99/p999.
    pub fn to_jsonl(&self) -> String {
        use serde_json::json;
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&json!({"type": "counter", "name": name, "value": v}).to_string());
            out.push('\n');
        }
        for (name, v) in &self.gauges {
            out.push_str(&json!({"type": "gauge", "name": name, "peak": v}).to_string());
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let s = h.summary();
            out.push_str(
                &json!({
                    "type": "histogram", "name": name,
                    "count": s.count, "mean": s.mean, "min": s.min,
                    "p50": s.p50, "p95": s.p95, "p99": s.p99, "p999": s.p999,
                    "max": s.max,
                })
                .to_string(),
            );
            out.push('\n');
        }
        for (name, t) in &self.timelines {
            out.push_str(
                &json!({
                    "type": "timeline", "name": name,
                    "interval_secs": t.interval_secs, "points": t.points,
                })
                .to_string(),
            );
            out.push('\n');
        }
        out
    }

    /// Prometheus text exposition. Metric names have `.`, `-`, and spaces
    /// mapped to `_`; histograms are exposed as summaries with
    /// `quantile`-labelled sample lines plus `_sum`/`_count`. Timelines
    /// have no Prometheus analogue and are exported only in the JSONL.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let s = h.summary();
            let _ = writeln!(out, "# TYPE {n} summary");
            for (q, v) in [
                ("0.5", s.p50),
                ("0.95", s.p95),
                ("0.99", s.p99),
                ("0.999", s.p999),
            ] {
                let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{n}_sum {}", s.mean * s.count as f64);
            let _ = writeln!(out, "{n}_count {}", s.count);
        }
        out
    }
}

/// Map a dotted metric name onto the Prometheus grammar.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_noop() {
        let reg = MetricRegistry::disabled();
        assert!(!reg.enabled());
        let c = reg.counter("a.b.c");
        let g = reg.gauge("a.b.g");
        let h = reg.histogram("a.b.h");
        let t = reg.timeline("a.b.t", SimDuration::from_secs(1));
        c.inc();
        g.set(5.0);
        h.record(0.5);
        t.record(SimTime::ZERO, 1.0);
        assert!(!c.enabled() && !g.enabled() && !h.enabled() && !t.enabled());
        assert_eq!(c.get(), 0);
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn handles_share_state_by_name() {
        let reg = MetricRegistry::new();
        let a = reg.counter("x.y.z");
        let b = reg.counter("x.y.z");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["x.y.z"], 3);
    }

    #[test]
    fn gauge_exports_peak_not_last() {
        let reg = MetricRegistry::new();
        let g = reg.gauge("pool.size");
        g.set(3.0);
        g.add(4.0); // 7 — the peak
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
        assert_eq!(g.peak(), 7.0);
        assert_eq!(reg.snapshot().gauges["pool.size"], 7.0);
    }

    #[test]
    fn empty_histograms_are_omitted() {
        let reg = MetricRegistry::new();
        let _idle = reg.histogram("never.recorded");
        let h = reg.histogram("has.values");
        h.record(0.25);
        let snap = reg.snapshot();
        assert!(!snap.histograms.contains_key("never.recorded"));
        assert_eq!(snap.histograms["has.values"].count(), 1);
        // Counters survive at zero.
        let _c = reg.counter("idle.counter");
        assert_eq!(reg.snapshot().counters["idle.counter"], 0);
    }

    #[test]
    fn snapshot_merge_sums_and_maxes() {
        let mk = |c: u64, g: f64, lat: f64| {
            let reg = MetricRegistry::new();
            reg.counter("n.ops").add(c);
            reg.gauge("n.peak").set(g);
            reg.histogram("n.secs").record(lat);
            reg.timeline("n.bytes", SimDuration::from_secs(1))
                .record(SimTime::from_nanos(500_000_000), c as f64);
            reg.snapshot()
        };
        let mut a = mk(3, 2.0, 0.1);
        let b = mk(4, 9.0, 0.2);
        a.merge(&b);
        assert_eq!(a.counters["n.ops"], 7);
        assert_eq!(a.gauges["n.peak"], 9.0);
        assert_eq!(a.histograms["n.secs"].count(), 2);
        assert_eq!(a.timelines["n.bytes"].points[0], 7.0);
    }

    #[test]
    fn canonical_json_is_stable_and_digest_detects_change() {
        let mk = |v: u64| {
            let reg = MetricRegistry::new();
            reg.counter("a").add(v);
            reg.gauge("b").set(1.5);
            reg.histogram("c").record(0.125);
            reg.snapshot()
        };
        let (a, b, c) = (mk(1), mk(1), mk(2));
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn jsonl_and_prometheus_render_all_kinds() {
        let reg = MetricRegistry::new();
        reg.counter("faas.sandbox.cold_starts").add(2);
        reg.gauge("faas.pool.warm_size").set(4.0);
        let h = reg.histogram("faas.invoke.latency_secs");
        for i in 1..=100 {
            h.record(i as f64 / 100.0);
        }
        reg.timeline("net.lane.s3", SimDuration::from_secs(1))
            .record(SimTime::ZERO, 10.0);
        let snap = reg.snapshot();
        let jsonl = snap.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.contains("\"p999\""));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE faas_sandbox_cold_starts counter"));
        assert!(prom.contains("faas_invoke_latency_secs{quantile=\"0.999\"}"));
        assert!(prom.contains("faas_pool_warm_size 4"));
        assert!(!prom.contains("net_lane_s3"), "timelines stay out of prom");
    }

    #[test]
    fn timeline_downsamples_past_cap() {
        let reg = MetricRegistry::new();
        let t = reg.timeline("x", SimDuration::from_millis(10));
        // 2000 windows of 10ms — must fold down to <= 512 points.
        for i in 0..2000u64 {
            t.record(SimTime::from_nanos(i * 10_000_000), 1.0);
        }
        let snap = reg.snapshot();
        let tl = &snap.timelines["x"];
        assert!(tl.points.len() <= MAX_TIMELINE_POINTS);
        assert!(
            (tl.interval_secs - 0.04).abs() < 1e-12,
            "{}",
            tl.interval_secs
        );
        assert!((tl.points.iter().sum::<f64>() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_merge_aligns_resolutions() {
        let mut coarse = TimelineSnapshot {
            interval_secs: 2.0,
            points: vec![1.0, 1.0],
        };
        let fine = TimelineSnapshot {
            interval_secs: 1.0,
            points: vec![1.0, 1.0, 1.0],
        };
        coarse.merge(&fine);
        assert_eq!(coarse.interval_secs, 2.0);
        assert_eq!(coarse.points, vec![3.0, 2.0]);
        assert!((coarse.peak_rate() - 1.5).abs() < 1e-12);
    }
}
