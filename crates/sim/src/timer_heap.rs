//! Cancellation-aware timer heap: the executor's timer queue.
//!
//! The previous implementation was a `BinaryHeap<Reverse<TimerEntry>>` with
//! a shared `fired` flag per entry: cancelling a sleep only set the flag,
//! leaving a tombstone that stayed in the heap (and kept its waker alive)
//! until it bubbled to the top. Workloads that cancel most of their timers
//! — `race` against a timeout, speculative re-execution, retry backoff —
//! paid `O(log n)` twice per dead entry and held the heap artificially
//! large.
//!
//! This heap removes cancelled entries *immediately*: every entry lives in
//! a generation-indexed slot that tracks its position in a quaternary
//! (4-ary) implicit heap, so [`TimerHeap::cancel`] is a position lookup
//! plus one sift. A 4-ary layout does the same work in half the tree
//! height of a binary heap, with all four children on one cache line of
//! the index vector — measurably faster for the sift-down-heavy pop loop
//! (see `sim_bench`, BENCH_sim.json).
//!
//! Ordering is `(deadline, seq)` where `seq` is an insertion counter:
//! timers with equal deadlines fire in registration order, exactly like
//! the old heap — the determinism sweep depends on it.

use crate::time::SimTime;

/// Key returned by [`TimerHeap::insert`]: `generation << 32 | slot index`.
pub type TimerKey = u64;

const INDEX_BITS: u32 = 32;
const INDEX_MASK: u64 = (1 << INDEX_BITS) - 1;
const ARITY: usize = 4;
/// Position value for slots not currently in the heap (free slots).
const NO_POS: u32 = u32::MAX;

#[inline]
fn split(key: TimerKey) -> (usize, u32) {
    ((key & INDEX_MASK) as usize, (key >> INDEX_BITS) as u32)
}

struct TimerSlot<T> {
    generation: u32,
    /// Index into `heap`, or `NO_POS` when free.
    pos: u32,
    deadline: SimTime,
    seq: u64,
    payload: Option<T>,
}

/// 4-ary min-heap over `(deadline, seq)` with O(log n) cancellation.
pub struct TimerHeap<T> {
    slots: Vec<TimerSlot<T>>,
    free: Vec<u32>,
    /// Implicit heap of slot indices.
    heap: Vec<u32>,
    next_seq: u64,
}

impl<T> Default for TimerHeap<T> {
    fn default() -> Self {
        TimerHeap::new()
    }
}

impl<T> TimerHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        TimerHeap {
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            next_seq: 0,
        }
    }

    /// Number of live (pending, uncancelled) timers.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    fn rank_of(&self, slot: usize) -> (SimTime, u64) {
        let s = &self.slots[slot];
        (s.deadline, s.seq)
    }

    /// Register a timer. Equal deadlines fire in insertion order.
    pub fn insert(&mut self, deadline: SimTime, payload: T) -> TimerKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self.heap.len() as u32;
        let index = match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                slot.pos = pos;
                slot.deadline = deadline;
                slot.seq = seq;
                slot.payload = Some(payload);
                index
            }
            None => {
                let index = self.slots.len();
                assert!(index <= INDEX_MASK as usize, "timer heap slot overflow");
                self.slots.push(TimerSlot {
                    generation: 0,
                    pos,
                    deadline,
                    seq,
                    payload: Some(payload),
                });
                index as u32
            }
        };
        self.heap.push(index);
        self.sift_up(pos as usize);
        let generation = self.slots[index as usize].generation;
        ((generation as u64) << INDEX_BITS) | index as u64
    }

    /// Earliest pending deadline, if any.
    pub fn peek_deadline(&self) -> Option<SimTime> {
        self.heap.first().map(|&i| self.slots[i as usize].deadline)
    }

    /// Pop the earliest timer if its deadline is `<= now`, returning its
    /// payload. The freed slot is immediately reusable.
    pub fn pop_due(&mut self, now: SimTime) -> Option<T> {
        let &top = self.heap.first()?;
        if self.slots[top as usize].deadline > now {
            return None;
        }
        self.remove_at(0)
    }

    /// Cancel a pending timer, removing its entry from the heap at once
    /// (no tombstone). Returns the payload, or `None` when the key is
    /// stale — already fired, already cancelled, or its slot reused.
    pub fn cancel(&mut self, key: TimerKey) -> Option<T> {
        let (index, generation) = split(key);
        let slot = self.slots.get(index)?;
        if slot.generation != generation || slot.pos == NO_POS {
            return None;
        }
        let pos = slot.pos as usize;
        self.remove_at(pos)
    }

    /// Replace the payload of a pending timer (same deadline/seq — used to
    /// refresh a sleeping task's waker without re-queueing). Returns false
    /// when the key is stale.
    pub fn update_payload(&mut self, key: TimerKey, payload: T) -> bool {
        let (index, generation) = split(key);
        match self.slots.get_mut(index) {
            Some(slot) if slot.generation == generation && slot.pos != NO_POS => {
                slot.payload = Some(payload);
                true
            }
            _ => false,
        }
    }

    /// Remove the entry at heap position `pos`, restore the heap property,
    /// and free its slot.
    fn remove_at(&mut self, pos: usize) -> Option<T> {
        let slot_index = self.heap[pos] as usize;
        let last = self.heap.len() - 1;
        self.heap.swap_remove(pos);
        if pos < last {
            let moved = self.heap[pos] as usize;
            self.slots[moved].pos = pos as u32;
            // The swapped-in entry may violate the property in either
            // direction relative to its new neighbourhood.
            self.sift_down(pos);
            self.sift_up(self.slots[self.heap[pos] as usize].pos as usize);
        }
        let slot = &mut self.slots[slot_index];
        slot.pos = NO_POS;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(slot_index as u32);
        slot.payload.take()
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            let here = self.heap[pos] as usize;
            let up = self.heap[parent] as usize;
            if self.rank_of(here) >= self.rank_of(up) {
                break;
            }
            self.heap.swap(pos, parent);
            self.slots[self.heap[pos] as usize].pos = pos as u32;
            self.slots[self.heap[parent] as usize].pos = parent as u32;
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let last_child = (first_child + ARITY).min(self.heap.len());
            let mut best = first_child;
            let mut best_rank = self.rank_of(self.heap[first_child] as usize);
            for c in first_child + 1..last_child {
                let r = self.rank_of(self.heap[c] as usize);
                if r < best_rank {
                    best = c;
                    best_rank = r;
                }
            }
            if self.rank_of(self.heap[pos] as usize) <= best_rank {
                break;
            }
            self.heap.swap(pos, best);
            self.slots[self.heap[pos] as usize].pos = pos as u32;
            self.slots[self.heap[best] as usize].pos = best as u32;
            pos = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_deadline_then_insertion_order() {
        let mut h = TimerHeap::new();
        h.insert(t(30), "c");
        h.insert(t(10), "a1");
        h.insert(t(10), "a2");
        h.insert(t(20), "b");
        assert_eq!(h.peek_deadline(), Some(t(10)));
        assert_eq!(h.pop_due(t(100)), Some("a1"));
        assert_eq!(h.pop_due(t(100)), Some("a2"));
        assert_eq!(h.pop_due(t(100)), Some("b"));
        assert_eq!(h.pop_due(t(100)), Some("c"));
        assert_eq!(h.pop_due(t(100)), None);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut h = TimerHeap::new();
        h.insert(t(50), ());
        assert_eq!(h.pop_due(t(49)), None);
        assert_eq!(h.pop_due(t(50)), Some(()));
    }

    #[test]
    fn cancel_removes_immediately() {
        let mut h = TimerHeap::new();
        let a = h.insert(t(10), "a");
        h.insert(t(20), "b");
        assert_eq!(h.len(), 2);
        assert_eq!(h.cancel(a), Some("a"));
        assert_eq!(h.len(), 1, "no tombstone left behind");
        assert_eq!(h.cancel(a), None, "double cancel misses");
        assert_eq!(h.peek_deadline(), Some(t(20)));
    }

    #[test]
    fn stale_key_after_reuse_misses() {
        let mut h = TimerHeap::new();
        let a = h.insert(t(10), 1u32);
        assert_eq!(h.pop_due(t(10)), Some(1));
        let b = h.insert(t(20), 2u32);
        // Slot reused: same index, newer generation.
        assert_eq!(a & INDEX_MASK, b & INDEX_MASK);
        assert_eq!(h.cancel(a), None);
        assert!(h.update_payload(b, 3));
        assert_eq!(h.pop_due(t(20)), Some(3));
    }

    #[test]
    fn interleaved_cancel_keeps_order() {
        let mut h = TimerHeap::new();
        let keys: Vec<_> = (0..100u64).map(|i| h.insert(t(i % 10), i)).collect();
        for (i, k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert!(h.cancel(*k).is_some());
            }
        }
        let mut popped = Vec::new();
        while let Some(v) = h.pop_due(t(1_000)) {
            popped.push(v);
        }
        let mut expect: Vec<u64> = (0..100).filter(|i| i % 3 != 0).collect();
        expect.sort_by_key(|&i| (i % 10, i));
        assert_eq!(popped, expect);
    }
}
