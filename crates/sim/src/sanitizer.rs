//! Runtime determinism sanitizer: asserts discrete-event-simulation
//! invariants as the simulation runs, and folds every scheduling decision
//! into a cheap rolling digest so two same-seed runs can be diffed at the
//! first divergent event instead of at the final output.
//!
//! The sanitizer is the runtime half of the two-layer determinism auditor
//! (the static half is the `simlint` crate). It is enabled by default in
//! debug builds — which is what `cargo test` runs — and off in release
//! builds unless [`Sim::enable_sanitizer`](crate::Sim::enable_sanitizer)
//! is called, so experiment binaries pay nothing for it.
//!
//! Checked invariants:
//! * the global virtual clock never moves backwards ([`Sanitizer::on_advance`]);
//! * each task observes monotonically non-decreasing time across its polls
//!   ([`Sanitizer::on_poll`]);
//! * domain invariants wired in by other crates — token-bucket conservation
//!   in `skyrise-net`, usage-meter cross-checks in `skyrise-compute` —
//!   via [`Sanitizer::check`] / [`Sanitizer::check_close`].
//!
//! A sanitizer panic means the simulation violated its own model contract;
//! the message names the invariant. Treat it like a failed assert, not
//! like flaky-test noise: the same seed will reproduce it exactly.

use crate::time::SimTime;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::{fnv1a64_fold, FNV64_OFFSET as FNV_OFFSET};

/// Fold one `u64` into an FNV-1a rolling hash.
fn fnv_fold(h: u64, v: u64) -> u64 {
    fnv1a64_fold(h, &v.to_le_bytes())
}

/// How often (in observed events) a digest checkpoint is recorded.
const CHECKPOINT_EVERY: u64 = 1024;

/// One digest checkpoint: the rolling digest after `event` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestCheckpoint {
    /// Number of events folded in when this checkpoint was taken.
    pub event: u64,
    /// Rolling digest value at that point.
    pub digest: u64,
}

/// Snapshot of sanitizer state after (or during) a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Total events observed (polls + clock advances + domain checks).
    pub events: u64,
    /// Final rolling digest. Two same-seed runs of the same model must
    /// produce identical digests; a mismatch proves nondeterminism.
    pub digest: u64,
    /// Periodic checkpoints for locating the first divergent event.
    pub trail: Vec<DigestCheckpoint>,
}

impl SanitizerReport {
    /// Locate the first divergence between two runs: returns the event
    /// count of the earliest checkpoint whose digests differ, or `None`
    /// when every common checkpoint (and the final digest) agrees.
    pub fn first_divergence(&self, other: &SanitizerReport) -> Option<u64> {
        for (a, b) in self.trail.iter().zip(&other.trail) {
            if a.event == b.event && a.digest != b.digest {
                return Some(a.event);
            }
        }
        if self.digest != other.digest || self.events != other.events {
            return Some(self.events.min(other.events));
        }
        None
    }
}

#[derive(Debug)]
struct SanitizerState {
    events: Cell<u64>,
    digest: Cell<u64>,
    trail: RefCell<Vec<DigestCheckpoint>>,
    /// Last virtual time each live task was polled at.
    task_clock: RefCell<BTreeMap<u64, u64>>,
}

/// Handle onto the simulation's sanitizer. Cheap to clone; a disabled
/// handle makes every call a no-op.
#[derive(Debug, Clone, Default)]
pub struct Sanitizer {
    state: Option<Rc<SanitizerState>>,
}

impl Sanitizer {
    /// An active sanitizer with empty state.
    pub fn new() -> Self {
        Sanitizer {
            state: Some(Rc::new(SanitizerState {
                events: Cell::new(0),
                digest: Cell::new(FNV_OFFSET),
                trail: RefCell::new(Vec::new()),
                task_clock: RefCell::new(BTreeMap::new()),
            })),
        }
    }

    /// A no-op sanitizer.
    pub fn disabled() -> Self {
        Sanitizer { state: None }
    }

    /// True when checks are active.
    pub fn enabled(&self) -> bool {
        self.state.is_some()
    }

    fn fold(&self, s: &SanitizerState, v: u64) {
        s.digest.set(fnv_fold(s.digest.get(), v));
        let n = s.events.get() + 1;
        s.events.set(n);
        if n % CHECKPOINT_EVERY == 0 {
            s.trail.borrow_mut().push(DigestCheckpoint {
                event: n,
                digest: s.digest.get(),
            });
        }
    }

    /// Record a task poll. Asserts the task's virtual clock is monotone:
    /// a task can never be polled at an earlier time than it last ran.
    pub fn on_poll(&self, task: u64, now: SimTime) {
        let Some(s) = &self.state else { return };
        let now = now.as_nanos();
        let mut clocks = s.task_clock.borrow_mut();
        if let Some(&last) = clocks.get(&task) {
            assert!(
                now >= last,
                "sanitizer: task {task} polled at t={now}ns after \
                 being polled at t={last}ns — virtual time ran backwards"
            );
        }
        clocks.insert(task, now);
        drop(clocks);
        self.fold(s, task);
        self.fold(s, now);
    }

    /// Record a task completion (frees its monotonicity slot).
    pub fn on_complete(&self, task: u64) {
        let Some(s) = &self.state else { return };
        s.task_clock.borrow_mut().remove(&task);
        self.fold(s, task ^ 0x5eed_dead_beef_0000);
    }

    /// Record a global clock advance. Asserts the clock never rewinds.
    pub fn on_advance(&self, from: SimTime, to: SimTime) {
        let Some(s) = &self.state else { return };
        assert!(
            to >= from,
            "sanitizer: virtual clock moved backwards: {from} -> {to}"
        );
        self.fold(s, to.as_nanos());
    }

    /// Assert a domain invariant. The message closure only runs on failure.
    pub fn check(&self, cond: bool, msg: impl FnOnce() -> String) {
        if self.state.is_none() {
            return;
        }
        assert!(cond, "sanitizer: {}", msg());
    }

    /// Assert two f64 quantities agree to within a relative epsilon
    /// (1e-6 of the larger magnitude, floored at an absolute 1e-9 so
    /// zero-vs-zero comparisons pass). Used for conservation laws where
    /// float rounding accumulates but real leaks are orders larger.
    pub fn check_close(&self, a: f64, b: f64, what: impl FnOnce() -> String) {
        if self.state.is_none() {
            return;
        }
        let scale = a.abs().max(b.abs());
        let tol = (scale * 1e-6).max(1e-9);
        assert!(
            (a - b).abs() <= tol,
            "sanitizer: {}: {a} != {b} (|diff| = {}, tol = {tol})",
            what(),
            (a - b).abs()
        );
    }

    /// Fold an arbitrary observation into the digest (e.g. bytes granted
    /// by a token bucket). Use for state that should be identical across
    /// same-seed runs but is invisible to the executor.
    pub fn observe(&self, label: &str, value: u64) {
        let Some(s) = &self.state else { return };
        let h = fnv1a64_fold(FNV_OFFSET, label.as_bytes());
        self.fold(s, h);
        self.fold(s, value);
    }

    /// Snapshot the current state, or `None` when disabled.
    pub fn report(&self) -> Option<SanitizerReport> {
        self.state.as_ref().map(|s| SanitizerReport {
            events: s.events.get(),
            digest: s.digest.get(),
            trail: s.trail.borrow().clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::rc::Rc;

    fn run_workload(seed: u64) -> SanitizerReport {
        let mut sim = Sim::new(seed);
        let san = sim.enable_sanitizer();
        for i in 0..20u64 {
            let ctx = sim.ctx();
            sim.spawn(async move {
                let d = ctx.with_rng(|r| r.gen_range_u64(1, 500));
                ctx.sleep(SimDuration::from_micros(d + i)).await;
                ctx.sleep(SimDuration::from_micros(d)).await;
            });
        }
        sim.run();
        san.report().expect("enabled")
    }

    #[test]
    fn same_seed_same_digest() {
        let a = run_workload(7);
        let b = run_workload(7);
        assert_eq!(a, b);
        assert_eq!(a.first_divergence(&b), None);
    }

    #[test]
    fn different_seed_different_digest() {
        let a = run_workload(7);
        let b = run_workload(8);
        assert_ne!(a.digest, b.digest);
        assert!(a.first_divergence(&b).is_some());
    }

    #[test]
    fn first_divergence_points_at_earliest_checkpoint() {
        let mk = |vals: &[(u64, u64)], digest: u64| SanitizerReport {
            events: vals.last().map(|v| v.0).unwrap_or(0),
            digest,
            trail: vals
                .iter()
                .map(|&(event, digest)| DigestCheckpoint { event, digest })
                .collect(),
        };
        let a = mk(&[(1024, 10), (2048, 20), (3072, 30)], 99);
        let b = mk(&[(1024, 10), (2048, 21), (3072, 31)], 98);
        assert_eq!(a.first_divergence(&b), Some(2048));
        let c = mk(&[(1024, 10), (2048, 20), (3072, 30)], 99);
        assert_eq!(a.first_divergence(&c), None);
    }

    #[test]
    fn disabled_sanitizer_is_noop() {
        let san = Sanitizer::disabled();
        san.on_poll(1, crate::SimTime::from_nanos(5));
        san.on_poll(1, crate::SimTime::from_nanos(1)); // would panic if enabled
        san.check(false, || unreachable!("message closure must not run"));
        assert!(san.report().is_none());
        assert!(!san.enabled());
    }

    #[test]
    #[should_panic(expected = "virtual time ran backwards")]
    fn per_task_clock_regression_panics() {
        let san = Sanitizer::new();
        san.on_poll(1, crate::SimTime::from_nanos(100));
        san.on_poll(1, crate::SimTime::from_nanos(50));
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn global_clock_regression_panics() {
        let san = Sanitizer::new();
        san.on_advance(
            crate::SimTime::from_nanos(100),
            crate::SimTime::from_nanos(99),
        );
    }

    #[test]
    #[should_panic(expected = "sanitizer: tokens leaked")]
    fn failed_check_panics_with_context() {
        let san = Sanitizer::new();
        san.check(false, || "tokens leaked".to_string());
    }

    #[test]
    fn check_close_accepts_rounding_rejects_leaks() {
        let san = Sanitizer::new();
        san.check_close(1e9, 1e9 + 0.5, || "rounding".into()); // within 1e-6 rel
        san.check_close(0.0, 0.0, || "zero".into());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            san.check_close(100.0, 101.0, || "leak".into());
        }));
        assert!(r.is_err(), "1% discrepancy must fail");
    }

    #[test]
    fn observe_changes_digest() {
        let a = Sanitizer::new();
        let b = Sanitizer::new();
        a.observe("bucket", 1);
        b.observe("bucket", 2);
        assert_ne!(a.report().unwrap().digest, b.report().unwrap().digest);
    }

    #[test]
    fn checkpoints_appear_on_long_runs() {
        let san = Sanitizer::new();
        for i in 0..3000u64 {
            san.observe("tick", i);
        }
        let r = san.report().unwrap();
        assert!(
            r.trail.len() >= 4,
            "3000 observations x2 folds => >=4 checkpoints, got {}",
            r.trail.len()
        );
        assert!(r.trail.windows(2).all(|w| w[0].event < w[1].event));
    }

    #[test]
    fn task_completion_frees_clock_slot() {
        let san = Sanitizer::new();
        san.on_poll(1, crate::SimTime::from_nanos(100));
        san.on_complete(1);
        // Task id reuse after completion must not trip the monotonicity
        // assert (the executor never reuses ids, but the sanitizer should
        // not depend on that).
        san.on_poll(1, crate::SimTime::from_nanos(50));
    }

    #[test]
    fn default_on_in_debug_builds() {
        let sim = Sim::new(1);
        assert_eq!(sim.sanitizer().enabled(), cfg!(debug_assertions));
        let _ = Rc::new(()); // silence unused-import lint paths in release
    }
}
