//! The AWS price catalog (us-east-1, July 2024) as cited by the paper's
//! Tables 1 and 2, plus the EBS/NVMe prices its Sec. 5.3 analysis needs.
//!
//! All monetary values are US dollars unless a field name says otherwise.

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Lambda
// ---------------------------------------------------------------------------

/// Memory granted per vCPU-equivalent: "1 vCPU equivalent per 1,769 MiB".
pub const LAMBDA_MIB_PER_VCPU: f64 = 1769.0;
/// Minimum configurable function memory (GiB).
pub const LAMBDA_MIN_MEMORY_GIB: f64 = 0.125;
/// Maximum configurable function memory (GiB).
pub const LAMBDA_MAX_MEMORY_GIB: f64 = 10.0;
/// Lambda network bandwidth is constant over instance sizes: ~0.63 Gbps.
pub const LAMBDA_NETWORK_GBPS: f64 = 0.63;

/// ARM (Graviton) Lambda pricing with monthly usage tiers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LambdaPricing {
    /// $/GB-second per tier: (tier ceiling in GB-s, price). The last tier
    /// ceiling is `f64::INFINITY`.
    pub gb_second_tiers: Vec<(f64, f64)>,
    /// $ per request.
    pub per_request: f64,
    /// Ephemeral storage beyond the free 512 MiB: $/GiB-month equivalent
    /// (Table 1 reports 8.12 ¢/GiB-mo).
    pub ephemeral_per_gib_month: f64,
    /// Free ephemeral storage (GiB).
    pub ephemeral_free_gib: f64,
}

impl LambdaPricing {
    /// The published ARM pricing.
    pub fn arm() -> Self {
        LambdaPricing {
            gb_second_tiers: vec![
                (6e9, 0.0000133334),
                (15e9, 0.0000120001),
                (f64::INFINITY, 0.0000106667),
            ],
            per_request: 0.20 / 1e6,
            ephemeral_per_gib_month: 0.0812,
            ephemeral_free_gib: 0.5,
        }
    }

    /// First-tier $/GB-second (what a small account pays).
    pub fn gb_second(&self) -> f64 {
        self.gb_second_tiers[0].1
    }

    /// ¢/GiB-hour at the first tier (Table 1's headline 4.80).
    pub fn cents_per_gib_hour(&self) -> f64 {
        self.gb_second() * 3600.0 * 100.0
    }

    /// ¢/GiB-hour at the last tier (Table 1's 3.84).
    pub fn cents_per_gib_hour_cheapest(&self) -> f64 {
        self.gb_second_tiers.last().expect("tiers non-empty").1 * 3600.0 * 100.0
    }

    /// Cost of one invocation: `memory_gib` for `seconds`, plus the request.
    pub fn invocation_cost(&self, memory_gib: f64, seconds: f64) -> f64 {
        self.gb_second() * memory_gib * seconds + self.per_request
    }
}

// ---------------------------------------------------------------------------
// EC2
// ---------------------------------------------------------------------------

/// Local NVMe SSD attached to an instance (c6gd variants).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SsdSpec {
    /// Number of drives.
    pub count: u32,
    /// Capacity per drive (GB).
    pub gb_each: f64,
    /// 4 KiB random-read IOPS per drive.
    pub read_iops_4k: f64,
    /// 4 KiB random-write IOPS per drive.
    pub write_iops_4k: f64,
    /// Sequential bandwidth per drive (MiB/s).
    pub bandwidth_mibps: f64,
}

/// One EC2 instance type: configuration and pricing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ec2InstanceSpec {
    /// Instance type name.
    pub name: &'static str,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Memory capacity (GiB).
    pub memory_gib: f64,
    /// On-demand hourly price.
    pub od_usd_per_hour: f64,
    /// Effective hourly price under a reserved commitment.
    pub reserved_usd_per_hour: f64,
    /// Sustained network bandwidth (Gbps).
    pub net_baseline_gbps: f64,
    /// Burst network bandwidth (Gbps); equals baseline for large sizes.
    pub net_burst_gbps: f64,
    /// Network token-bucket capacity (GiB). Grows with instance size —
    /// the paper's Fig. 6 reports this alongside burst/baseline bandwidth.
    pub net_bucket_gib: f64,
    /// Local NVMe, if any (c6gd).
    pub ssd: Option<SsdSpec>,
}

impl Ec2InstanceSpec {
    /// ¢ per GiB of RAM per hour, on demand.
    pub fn cents_per_gib_hour(&self) -> f64 {
        self.od_usd_per_hour / self.memory_gib * 100.0
    }

    /// ¢ per vCPU-hour, on demand.
    pub fn cents_per_vcpu_hour(&self) -> f64 {
        self.od_usd_per_hour / self.vcpus as f64 * 100.0
    }

    /// Baseline network bandwidth in bytes/second.
    pub fn net_baseline_bps(&self) -> f64 {
        self.net_baseline_gbps * 1e9 / 8.0
    }

    /// Burst network bandwidth in bytes/second.
    pub fn net_burst_bps(&self) -> f64 {
        self.net_burst_gbps * 1e9 / 8.0
    }

    /// Network bucket capacity in bytes.
    pub fn net_bucket_bytes(&self) -> f64 {
        self.net_bucket_gib * (1u64 << 30) as f64
    }
}

/// The instance types used throughout the paper. Reserved prices use the
/// common ~0.61× (1-yr) factor except c6gn, where the paper's Table 8
/// implies a deeper (3-yr all-upfront, ~0.39×) commitment.
pub fn ec2_catalog() -> Vec<Ec2InstanceSpec> {
    let c6g = |name, vcpus, mem: f64, od: f64, base, burst, bucket| Ec2InstanceSpec {
        name,
        vcpus,
        memory_gib: mem,
        od_usd_per_hour: od,
        reserved_usd_per_hour: od * 0.61,
        net_baseline_gbps: base,
        net_burst_gbps: burst,
        net_bucket_gib: bucket,
        ssd: None,
    };
    vec![
        c6g("c6g.medium", 1, 2.0, 0.034, 0.5, 10.0, 1.2),
        c6g("c6g.large", 2, 4.0, 0.068, 0.75, 10.0, 2.4),
        c6g("c6g.xlarge", 4, 8.0, 0.136, 1.25, 10.0, 4.8),
        c6g("c6g.2xlarge", 8, 16.0, 0.272, 2.5, 10.0, 9.6),
        c6g("c6g.4xlarge", 16, 32.0, 0.544, 5.0, 10.0, 19.2),
        c6g("c6g.8xlarge", 32, 64.0, 1.088, 12.0, 12.0, 0.0),
        c6g("c6g.12xlarge", 48, 96.0, 1.632, 20.0, 20.0, 0.0),
        c6g("c6g.16xlarge", 64, 128.0, 2.176, 25.0, 25.0, 0.0),
        // Network-optimised: ~4x the network throughput of same-size c6g.
        Ec2InstanceSpec {
            name: "c6gn.xlarge",
            vcpus: 4,
            memory_gib: 8.0,
            od_usd_per_hour: 0.1728,
            reserved_usd_per_hour: 0.0676,
            net_baseline_gbps: 6.3,
            net_burst_gbps: 25.0,
            net_bucket_gib: 9.6,
            ssd: None,
        },
        Ec2InstanceSpec {
            name: "c6gn.2xlarge",
            vcpus: 8,
            memory_gib: 16.0,
            od_usd_per_hour: 0.3456,
            reserved_usd_per_hour: 0.1352,
            net_baseline_gbps: 12.5,
            net_burst_gbps: 25.0,
            net_bucket_gib: 19.2,
            ssd: None,
        },
        Ec2InstanceSpec {
            name: "c6gn.16xlarge",
            vcpus: 64,
            memory_gib: 128.0,
            od_usd_per_hour: 2.7648,
            reserved_usd_per_hour: 1.0816,
            net_baseline_gbps: 100.0,
            net_burst_gbps: 100.0,
            net_bucket_gib: 0.0,
            ssd: None,
        },
        // Local-NVMe variants used by the storage-hierarchy analysis.
        Ec2InstanceSpec {
            name: "c6gd.xlarge",
            vcpus: 4,
            memory_gib: 8.0,
            od_usd_per_hour: 0.1536,
            reserved_usd_per_hour: 0.0937,
            net_baseline_gbps: 1.25,
            net_burst_gbps: 10.0,
            net_bucket_gib: 4.8,
            ssd: Some(SsdSpec {
                count: 1,
                gb_each: 237.0,
                read_iops_4k: 53_750.0,
                write_iops_4k: 22_500.0,
                bandwidth_mibps: 258.0,
            }),
        },
        Ec2InstanceSpec {
            name: "c6gd.16xlarge",
            vcpus: 64,
            memory_gib: 128.0,
            od_usd_per_hour: 2.4576,
            reserved_usd_per_hour: 1.4991,
            net_baseline_gbps: 25.0,
            net_burst_gbps: 25.0,
            net_bucket_gib: 0.0,
            ssd: Some(SsdSpec {
                count: 2,
                gb_each: 1900.0,
                read_iops_4k: 430_000.0,
                write_iops_4k: 180_000.0,
                bandwidth_mibps: 2064.0,
            }),
        },
    ]
}

/// Look an instance up by name.
pub fn ec2_instance(name: &str) -> Option<Ec2InstanceSpec> {
    ec2_catalog().into_iter().find(|i| i.name == name)
}

// ---------------------------------------------------------------------------
// Serverless storage
// ---------------------------------------------------------------------------

/// Identifier of a storage service in the catalog and usage meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StorageService {
    /// S3 Standard object storage.
    S3Standard,
    /// S3 Express One Zone.
    S3Express,
    /// DynamoDB on-demand.
    DynamoDb,
    /// EFS elastic throughput.
    Efs,
}

impl StorageService {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            StorageService::S3Standard => "S3 Standard",
            StorageService::S3Express => "S3 Express",
            StorageService::DynamoDb => "DynamoDB",
            StorageService::Efs => "EFS",
        }
    }

    /// All services, in Table 2 order.
    pub fn all() -> [StorageService; 4] {
        [
            StorageService::S3Standard,
            StorageService::S3Express,
            StorageService::DynamoDb,
            StorageService::Efs,
        ]
    }
}

/// Pricing of one serverless storage service (Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoragePricing {
    /// The service this entry prices.
    pub service: StorageService,
    /// $ per read request (for DynamoDB: per read *unit*).
    pub read_request: f64,
    /// $ per write request (for DynamoDB: per write *unit*).
    pub write_request: f64,
    /// Bytes covered by one request unit for reads (`u64::MAX` = size-independent).
    pub read_unit_bytes: u64,
    /// Bytes covered by one write unit.
    pub write_unit_bytes: u64,
    /// $ per GiB transferred on reads.
    pub transfer_read_per_gib: f64,
    /// $ per GiB transferred on writes.
    pub transfer_write_per_gib: f64,
    /// Bytes per request exempt from transfer charges (S3 Express: 512 KiB).
    pub transfer_free_bytes: u64,
    /// $ per GiB-month stored (lower bound of the published range).
    pub storage_per_gib_month: f64,
}

impl StoragePricing {
    /// Pricing table entry for a service.
    pub fn of(service: StorageService) -> StoragePricing {
        match service {
            StorageService::S3Standard => StoragePricing {
                service,
                read_request: 0.40 / 1e6,
                write_request: 5.00 / 1e6,
                read_unit_bytes: u64::MAX,
                write_unit_bytes: u64::MAX,
                transfer_read_per_gib: 0.0,
                transfer_write_per_gib: 0.0,
                transfer_free_bytes: 0,
                storage_per_gib_month: 0.023,
            },
            StorageService::S3Express => StoragePricing {
                service,
                read_request: 0.20 / 1e6,
                write_request: 2.50 / 1e6,
                read_unit_bytes: u64::MAX,
                write_unit_bytes: u64::MAX,
                transfer_read_per_gib: 0.0015,
                transfer_write_per_gib: 0.008,
                transfer_free_bytes: 512 * 1024,
                storage_per_gib_month: 0.16,
            },
            StorageService::DynamoDb => StoragePricing {
                service,
                read_request: 0.25 / 1e6,
                write_request: 1.25 / 1e6,
                read_unit_bytes: 4 * 1024, // strongly-consistent read unit
                write_unit_bytes: 1024,
                transfer_read_per_gib: 0.0,
                transfer_write_per_gib: 0.0,
                transfer_free_bytes: 0,
                storage_per_gib_month: 0.25,
            },
            StorageService::Efs => StoragePricing {
                service,
                read_request: 0.0,
                write_request: 0.0,
                read_unit_bytes: u64::MAX,
                write_unit_bytes: u64::MAX,
                transfer_read_per_gib: 0.03,
                transfer_write_per_gib: 0.06,
                transfer_free_bytes: 0,
                storage_per_gib_month: 0.16,
            },
        }
    }

    /// Cost of one request of `bytes`, reading (`write = false`) or writing.
    pub fn request_cost(&self, write: bool, bytes: u64) -> f64 {
        let (per_unit, unit, per_gib) = if write {
            (
                self.write_request,
                self.write_unit_bytes,
                self.transfer_write_per_gib,
            )
        } else {
            (
                self.read_request,
                self.read_unit_bytes,
                self.transfer_read_per_gib,
            )
        };
        let units = if unit == u64::MAX {
            1
        } else {
            bytes.div_ceil(unit).max(1)
        };
        let billable = bytes.saturating_sub(self.transfer_free_bytes);
        per_unit * units as f64 + per_gib * billable as f64 / (1u64 << 30) as f64
    }

    /// Cost of keeping `bytes` stored for `seconds`.
    pub fn storage_cost(&self, bytes: u64, seconds: f64) -> f64 {
        const SECONDS_PER_MONTH: f64 = 30.0 * 86_400.0;
        self.storage_per_gib_month * bytes as f64 / (1u64 << 30) as f64 * seconds
            / SECONDS_PER_MONTH
    }
}

/// Cross-region data transfer: $/GB (used by Table 7's X-Region row).
pub const CROSS_REGION_TRANSFER_PER_GB: f64 = 0.02;

/// EBS gp3: $/GB-month.
pub const EBS_GP3_PER_GB_MONTH: f64 = 0.08;
/// EBS gp3 baseline IOPS (included).
pub const EBS_GP3_BASE_IOPS: f64 = 3000.0;
/// EBS gp3 baseline throughput (MB/s, included).
pub const EBS_GP3_BASE_MBPS: f64 = 125.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_price_range_matches_table1() {
        let p = LambdaPricing::arm();
        assert!((p.cents_per_gib_hour() - 4.80).abs() < 0.01);
        assert!((p.cents_per_gib_hour_cheapest() - 3.84).abs() < 0.01);
        // ¢/vCPU-h = ¢/GiB-h * 1.769
        let vcpu_h = p.cents_per_gib_hour() * LAMBDA_MIB_PER_VCPU / 1024.0;
        assert!((vcpu_h - 8.29).abs() < 0.3, "{vcpu_h}");
    }

    #[test]
    fn lambda_invocation_cost() {
        let p = LambdaPricing::arm();
        // 6.91 GiB (4 vCPU) for 1 second ≈ the paper's worker sizing.
        let gib = 7076.0 / 1024.0;
        let c = p.invocation_cost(gib * 1.073_741_824, 1.0); // GiB -> GB
        assert!(c > 9e-5 && c < 1.1e-4, "{c}");
    }

    #[test]
    fn ec2_memory_price_range_matches_table1() {
        let cat = ec2_catalog();
        let max_cents = cat
            .iter()
            .filter(|i| i.name.starts_with("c6g."))
            .map(|i| i.cents_per_gib_hour())
            .fold(0.0f64, f64::max);
        assert!((max_cents - 1.70).abs() < 0.01, "{max_cents}");
        let min_reserved = cat
            .iter()
            .filter(|i| i.name.starts_with("c6g."))
            .map(|i| i.reserved_usd_per_hour / i.memory_gib * 100.0)
            .fold(f64::INFINITY, f64::min);
        assert!(min_reserved > 0.6 && min_reserved < 1.2, "{min_reserved}");
    }

    #[test]
    fn ec2_vcpu_price_matches_table1() {
        let xl = ec2_instance("c6g.xlarge").unwrap();
        assert!((xl.cents_per_vcpu_hour() - 3.40).abs() < 0.01);
    }

    #[test]
    fn ec2_network_range_matches_table1() {
        let cat = ec2_catalog();
        let c6g: Vec<_> = cat.iter().filter(|i| i.name.starts_with("c6g.")).collect();
        let min = c6g
            .iter()
            .map(|i| i.net_baseline_gbps)
            .fold(f64::INFINITY, f64::min);
        let max = c6g.iter().map(|i| i.net_baseline_gbps).fold(0.0, f64::max);
        assert_eq!(min, 0.5);
        assert_eq!(max, 25.0);
    }

    #[test]
    fn s3_request_cost_is_size_independent() {
        let p = StoragePricing::of(StorageService::S3Standard);
        assert_eq!(p.request_cost(false, 1), p.request_cost(false, 5 << 40));
        assert!((p.request_cost(false, 1024) - 4e-7).abs() < 1e-12);
        assert!((p.request_cost(true, 1024) - 5e-6).abs() < 1e-12);
    }

    #[test]
    fn s3_express_charges_transfer_beyond_512kib() {
        let p = StoragePricing::of(StorageService::S3Express);
        let small = p.request_cost(false, 512 * 1024);
        assert!((small - 2e-7).abs() < 1e-12, "free below 512 KiB");
        let big = p.request_cost(false, 16 * 1024 * 1024);
        // 15.5 MiB billable * 0.0015/GiB ≈ 2.27e-5, plus the request.
        assert!(
            (big - (2e-7 + 15.5 / 1024.0 * 0.0015)).abs() < 1e-9,
            "{big}"
        );
    }

    #[test]
    fn dynamodb_charges_per_unit() {
        let p = StoragePricing::of(StorageService::DynamoDb);
        // 1 KiB read: one 4-KiB unit.
        assert!((p.request_cost(false, 1024) - 2.5e-7).abs() < 1e-14);
        // 9 KiB read: three units.
        assert!((p.request_cost(false, 9 * 1024) - 7.5e-7).abs() < 1e-14);
        // 400 KiB write: 400 units.
        assert!((p.request_cost(true, 400 * 1024) - 400.0 * 1.25e-6).abs() < 1e-10);
    }

    #[test]
    fn efs_charges_transfer_only() {
        let p = StoragePricing::of(StorageService::Efs);
        let gib = 1u64 << 30;
        assert!((p.request_cost(false, gib) - 0.03).abs() < 1e-12);
        assert!((p.request_cost(true, gib) - 0.06).abs() < 1e-12);
    }

    #[test]
    fn storage_cost_monthly_rate() {
        let p = StoragePricing::of(StorageService::S3Standard);
        let one_gib_one_month = p.storage_cost(1 << 30, 30.0 * 86_400.0);
        assert!((one_gib_one_month - 0.023).abs() < 1e-9);
    }

    #[test]
    fn s3_cheapest_by_an_order_of_magnitude() {
        let s3 = StoragePricing::of(StorageService::S3Standard).storage_per_gib_month;
        for svc in [
            StorageService::S3Express,
            StorageService::DynamoDb,
            StorageService::Efs,
        ] {
            assert!(StoragePricing::of(svc).storage_per_gib_month >= 6.0 * s3);
        }
    }

    #[test]
    fn catalog_lookup() {
        assert!(ec2_instance("c6g.xlarge").is_some());
        assert!(ec2_instance("m5.large").is_none());
        assert_eq!(ec2_instance("c6gd.xlarge").unwrap().ssd.unwrap().count, 1);
    }
}
