//! Break-even analysis (paper Sec. 5.3): two cloud variants of Gray's
//! five-minute rule, and the break-even access size for shuffling through
//! object storage versus a VM cluster.
//!
//! The formulas are implemented verbatim:
//!
//! * capacity-priced tiers (RAM, SSD, EBS):
//!   `BEI = PagesPerMB / AccessesPerSecondPerDisk * RentPerHourPerDisk / RentPerHourPerMBofRAM`
//! * request-priced tiers (S3, DynamoDB):
//!   `BEI = PagesPerMB * PricePerAccessToTier2 / RentPerSecondPerMBofTier1`
//! * shuffle media:
//!   `BEAS = PricePerAccess * MBPerHourPerServer / RentPerHourPerServer`
//!
//! Calibrated attribution constants (documented in EXPERIMENTS.md): RAM is
//! priced at its marginal share of the instance price (~13% of the per-GiB
//! C6g rate), the SSD "disk unit" is the c6gd.xlarge NVMe at its price
//! premium over c6g.xlarge, and the EBS unit is a 400 GB gp3 volume.

use crate::catalog::{
    ec2_instance, StoragePricing, StorageService, CROSS_REGION_TRANSFER_PER_GB, EBS_GP3_BASE_IOPS,
    EBS_GP3_BASE_MBPS, EBS_GP3_PER_GB_MONTH,
};
use serde::{Deserialize, Serialize};

/// RAM rent attribution: fraction of an instance's per-GiB price charged
/// to memory (the rest buys CPU, network, and margin).
pub const RAM_ATTRIBUTION: f64 = 0.1324;

/// $/MB-hour of VM RAM under the attribution above (≈ 2.2e-6).
pub fn ram_rent_per_mb_hour() -> f64 {
    let xl = ec2_instance("c6g.xlarge").expect("catalog has c6g.xlarge");
    xl.cents_per_gib_hour() / 100.0 / 1024.0 * RAM_ATTRIBUTION
}

/// $/MB-second of VM RAM.
pub fn ram_rent_per_mb_second() -> f64 {
    ram_rent_per_mb_hour() / 3600.0
}

/// $/MB-second of local NVMe capacity (priced at its per-GiB-month rate,
/// Table 1's upper bound 5.41 ¢/GiB-mo).
pub fn ssd_rent_per_mb_second() -> f64 {
    0.0541 / 1024.0 / (30.0 * 86_400.0)
}

/// Break-even interval for capacity-priced tier-2 (seconds).
pub fn bei_capacity(
    pages_per_mb: f64,
    accesses_per_second_per_disk: f64,
    rent_per_hour_per_disk: f64,
    rent_per_hour_per_mb_ram: f64,
) -> f64 {
    pages_per_mb / accesses_per_second_per_disk * rent_per_hour_per_disk / rent_per_hour_per_mb_ram
}

/// Break-even interval for request-priced tier-2 (seconds).
pub fn bei_request(
    pages_per_mb: f64,
    price_per_access: f64,
    rent_per_sec_per_mb_tier1: f64,
) -> f64 {
    pages_per_mb * price_per_access / rent_per_sec_per_mb_tier1
}

/// Break-even access size for shuffling via request-priced storage (MB),
/// with a *size-independent* price per access.
pub fn beas(
    price_per_access: f64,
    mb_per_hour_per_server: f64,
    rent_per_hour_per_server: f64,
) -> f64 {
    price_per_access * mb_per_hour_per_server / rent_per_hour_per_server
}

/// BEAS when the access price itself grows with size (S3 Express transfer
/// fees): solve `size * vm_cost_per_mb = request + (size - free) * fee_per_mb`.
/// Returns `None` when the fee slope exceeds the VM cost slope — the
/// storage class then never breaks even (the paper's finding for Express).
pub fn beas_with_transfer_fee(
    request_price: f64,
    fee_per_mb: f64,
    free_mb: f64,
    mb_per_hour_per_server: f64,
    rent_per_hour_per_server: f64,
) -> Option<f64> {
    let vm_cost_per_mb = rent_per_hour_per_server / mb_per_hour_per_server;
    let slope = vm_cost_per_mb - fee_per_mb;
    if slope <= 0.0 {
        return None;
    }
    let size = (request_price - fee_per_mb * free_mb) / slope;
    (size > 0.0).then_some(size)
}

// ---------------------------------------------------------------------------
// Table 7: break-even intervals across the cloud storage hierarchy
// ---------------------------------------------------------------------------

/// Access sizes of Table 7, in bytes.
pub const TABLE7_ACCESS_SIZES: [u64; 4] = [4 << 10, 16 << 10, 4 << 20, 16 << 20];

/// Tier-1/tier-2 combinations of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HierarchyPair {
    /// VM RAM over local NVMe.
    RamSsd,
    /// VM RAM over an EBS gp3 volume.
    RamEbs,
    /// VM RAM over S3 Standard.
    RamS3Standard,
    /// VM RAM over S3 Express One Zone.
    RamS3Express,
    /// Local NVMe over S3 Standard.
    SsdS3Standard,
    /// Local NVMe over S3 Express One Zone.
    SsdS3Express,
    /// Local NVMe over cross-region S3.
    SsdS3CrossRegion,
}

impl HierarchyPair {
    /// Row label as printed by the paper.
    pub fn label(self) -> &'static str {
        match self {
            HierarchyPair::RamSsd => "RAM/SSD",
            HierarchyPair::RamEbs => "RAM/EBS",
            HierarchyPair::RamS3Standard => "RAM/S3 Standard",
            HierarchyPair::RamS3Express => "RAM/S3 Express",
            HierarchyPair::SsdS3Standard => "SSD/S3 Standard",
            HierarchyPair::SsdS3Express => "SSD/S3 Express",
            HierarchyPair::SsdS3CrossRegion => "SSD/S3 X-Region",
        }
    }

    /// All rows in table order.
    pub fn all() -> [HierarchyPair; 7] {
        [
            HierarchyPair::RamSsd,
            HierarchyPair::RamEbs,
            HierarchyPair::RamS3Standard,
            HierarchyPair::RamS3Express,
            HierarchyPair::SsdS3Standard,
            HierarchyPair::SsdS3Express,
            HierarchyPair::SsdS3CrossRegion,
        ]
    }
}

/// Break-even interval in seconds for one Table 7 cell.
pub fn table7_cell(pair: HierarchyPair, access_bytes: u64) -> f64 {
    let pages_per_mb = 1e6 / access_bytes as f64;
    let ram_h = ram_rent_per_mb_hour();
    let ram_s = ram_rent_per_mb_second();
    let ssd_s = ssd_rent_per_mb_second();

    match pair {
        HierarchyPair::RamSsd => {
            let spec = ec2_instance("c6gd.xlarge").expect("catalog");
            let ssd = spec.ssd.expect("c6gd has NVMe");
            // Disk rent = the c6gd premium over the same-size c6g.
            let base = ec2_instance("c6g.xlarge").expect("catalog");
            let rent_disk = spec.od_usd_per_hour - base.od_usd_per_hour;
            let by_iops = ssd.read_iops_4k;
            let by_bw = ssd.bandwidth_mibps * (1 << 20) as f64 / access_bytes as f64;
            bei_capacity(pages_per_mb, by_iops.min(by_bw), rent_disk, ram_h)
        }
        HierarchyPair::RamEbs => {
            // Unit: 400 GB gp3 volume at baseline IOPS/throughput.
            let rent_disk = 400.0 * EBS_GP3_PER_GB_MONTH / (30.0 * 24.0);
            let by_iops = EBS_GP3_BASE_IOPS;
            let by_bw = EBS_GP3_BASE_MBPS * 1e6 / access_bytes as f64;
            bei_capacity(pages_per_mb, by_iops.min(by_bw), rent_disk, ram_h)
        }
        HierarchyPair::RamS3Standard => {
            let p = StoragePricing::of(StorageService::S3Standard);
            bei_request(pages_per_mb, p.request_cost(false, access_bytes), ram_s)
        }
        HierarchyPair::RamS3Express => {
            let p = StoragePricing::of(StorageService::S3Express);
            bei_request(pages_per_mb, p.request_cost(false, access_bytes), ram_s)
        }
        HierarchyPair::SsdS3Standard => {
            let p = StoragePricing::of(StorageService::S3Standard);
            bei_request(pages_per_mb, p.request_cost(false, access_bytes), ssd_s)
        }
        HierarchyPair::SsdS3Express => {
            let p = StoragePricing::of(StorageService::S3Express);
            bei_request(pages_per_mb, p.request_cost(false, access_bytes), ssd_s)
        }
        HierarchyPair::SsdS3CrossRegion => {
            let p = StoragePricing::of(StorageService::S3Standard);
            let price = p.request_cost(false, access_bytes)
                + access_bytes as f64 / 1e9 * CROSS_REGION_TRANSFER_PER_GB;
            bei_request(pages_per_mb, price, ssd_s)
        }
    }
}

/// The complete Table 7 as `(row, [seconds per access size])`.
pub fn table7() -> Vec<(HierarchyPair, [f64; 4])> {
    HierarchyPair::all()
        .into_iter()
        .map(|pair| {
            let mut cells = [0.0; 4];
            for (i, &sz) in TABLE7_ACCESS_SIZES.iter().enumerate() {
                cells[i] = table7_cell(pair, sz);
            }
            (pair, cells)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 8: break-even access sizes for shuffle media
// ---------------------------------------------------------------------------

/// One Table 8 column: an instance type under a pricing model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShuffleCluster {
    /// Instance type name.
    pub instance: &'static str,
    /// Reserved pricing instead of on-demand.
    pub reserved: bool,
}

impl ShuffleCluster {
    /// Column label.
    pub fn label(&self) -> String {
        format!(
            "{} {}",
            self.instance,
            if self.reserved {
                "reserved"
            } else {
                "on-demand"
            }
        )
    }

    fn rent_per_hour(&self) -> f64 {
        let spec = ec2_instance(self.instance).expect("catalog");
        if self.reserved {
            spec.reserved_usd_per_hour
        } else {
            spec.od_usd_per_hour
        }
    }

    fn mb_per_hour(&self) -> f64 {
        let spec = ec2_instance(self.instance).expect("catalog");
        spec.net_baseline_bps() / 1e6 * 3600.0
    }
}

/// The paper's Table 8 columns.
pub fn table8_clusters() -> Vec<ShuffleCluster> {
    vec![
        ShuffleCluster {
            instance: "c6g.xlarge",
            reserved: false,
        },
        ShuffleCluster {
            instance: "c6g.8xlarge",
            reserved: false,
        },
        ShuffleCluster {
            instance: "c6gn.xlarge",
            reserved: false,
        },
        ShuffleCluster {
            instance: "c6gn.xlarge",
            reserved: true,
        },
    ]
}

/// Break-even access size (MB) for S3 Standard against a cluster.
pub fn table8_s3_standard(cluster: &ShuffleCluster) -> f64 {
    let p = StoragePricing::of(StorageService::S3Standard);
    beas(
        p.request_cost(false, 1),
        cluster.mb_per_hour(),
        cluster.rent_per_hour(),
    )
}

/// Break-even access size (MB) for S3 Express — `None` means it never
/// breaks even (its transfer fee exceeds the VM network cost per MB).
pub fn table8_s3_express(cluster: &ShuffleCluster) -> Option<f64> {
    let p = StoragePricing::of(StorageService::S3Express);
    let fee_per_mb = p.transfer_read_per_gib / 1024.0; // $/MiB ≈ $/MB here
    beas_with_transfer_fee(
        p.read_request,
        fee_per_mb,
        0.5,
        cluster.mb_per_hour(),
        cluster.rent_per_hour(),
    )
}

/// Render a duration in the paper's style: "38s", "27min", "12h", "59d".
pub fn humanize_secs(s: f64) -> String {
    if s < 90.0 {
        format!("{}s", s.round() as i64)
    } else if s < 90.0 * 60.0 {
        format!("{}min", (s / 60.0).round() as i64)
    } else if s < 36.0 * 3600.0 {
        format!("{}h", (s / 3600.0).round() as i64)
    } else {
        format!("{}d", (s / 86_400.0).round() as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(pair: HierarchyPair, kib: u64) -> f64 {
        table7_cell(pair, kib << 10)
    }

    #[test]
    fn ram_s3_standard_matches_paper_row() {
        // Paper: 2d / 12h / 3min / 41s.
        assert!((cell(HierarchyPair::RamS3Standard, 4) / 86_400.0 - 2.0).abs() < 0.2);
        assert!((cell(HierarchyPair::RamS3Standard, 16) / 3600.0 - 12.0).abs() < 1.0);
        assert!((cell(HierarchyPair::RamS3Standard, 4 << 10) / 60.0 - 3.0).abs() < 0.5);
        assert!((cell(HierarchyPair::RamS3Standard, 16 << 10) - 41.0).abs() < 4.0);
    }

    #[test]
    fn ram_s3_express_matches_paper_row() {
        // Paper: 23h / 6h / 36min / 39min.
        assert!((cell(HierarchyPair::RamS3Express, 4) / 3600.0 - 23.0).abs() < 1.5);
        assert!((cell(HierarchyPair::RamS3Express, 16) / 3600.0 - 6.0).abs() < 0.5);
        assert!((cell(HierarchyPair::RamS3Express, 4 << 10) / 60.0 - 36.0).abs() < 3.0);
        assert!((cell(HierarchyPair::RamS3Express, 16 << 10) / 60.0 - 39.0).abs() < 3.0);
    }

    #[test]
    fn ssd_s3_rows_match_paper() {
        // SSD/S3 Standard: 59d / 15d / 1h / 21min.
        assert!((cell(HierarchyPair::SsdS3Standard, 4) / 86_400.0 - 59.0).abs() < 5.0);
        assert!((cell(HierarchyPair::SsdS3Standard, 16) / 86_400.0 - 15.0).abs() < 1.5);
        assert!((cell(HierarchyPair::SsdS3Standard, 4 << 10) / 3600.0 - 1.3).abs() < 0.4);
        assert!((cell(HierarchyPair::SsdS3Standard, 16 << 10) / 60.0 - 21.0).abs() < 2.5);
        // SSD/S3 X-Region: 70d / 26d / 11d / 11d (constant for large sizes).
        assert!((cell(HierarchyPair::SsdS3CrossRegion, 4) / 86_400.0 - 70.0).abs() < 4.0);
        assert!((cell(HierarchyPair::SsdS3CrossRegion, 16) / 86_400.0 - 26.0).abs() < 2.0);
        let d4 = cell(HierarchyPair::SsdS3CrossRegion, 4 << 10) / 86_400.0;
        let d16 = cell(HierarchyPair::SsdS3CrossRegion, 16 << 10) / 86_400.0;
        assert!((d4 - 12.0).abs() < 1.5, "{d4}");
        assert!(
            (d4 - d16).abs() / d4 < 0.05,
            "transfer fee dominates: constant"
        );
    }

    #[test]
    fn ram_ssd_is_seconds_scale() {
        // Paper: 38s / 31s / 31s / 31s — an order of magnitude below a
        // decade ago, constant for bandwidth-bound sizes.
        let s4 = cell(HierarchyPair::RamSsd, 4);
        assert!(s4 > 20.0 && s4 < 60.0, "{s4}");
        let s16 = cell(HierarchyPair::RamSsd, 16);
        let s4m = cell(HierarchyPair::RamSsd, 4 << 10);
        let s16m = cell(HierarchyPair::RamSsd, 16 << 10);
        assert!((s16 - s4m).abs() / s4m < 0.35, "{s16} vs {s4m}");
        assert!((s4m - s16m).abs() / s4m < 0.01, "bandwidth-bound constancy");
    }

    #[test]
    fn ram_ebs_is_minutes_scale() {
        // Paper: 27min / 7min / 3min / 3min.
        assert!((cell(HierarchyPair::RamEbs, 4) / 60.0 - 29.0).abs() < 5.0);
        assert!((cell(HierarchyPair::RamEbs, 16) / 60.0 - 7.4).abs() < 2.0);
        assert!((cell(HierarchyPair::RamEbs, 4 << 10) / 60.0 - 3.0).abs() < 1.0);
    }

    #[test]
    fn hierarchy_ordering_holds() {
        // For small accesses: SSD << EBS << S3 Express << S3 Standard.
        let ssd = cell(HierarchyPair::RamSsd, 4);
        let ebs = cell(HierarchyPair::RamEbs, 4);
        let s3x = cell(HierarchyPair::RamS3Express, 4);
        let s3 = cell(HierarchyPair::RamS3Standard, 4);
        assert!(ssd < ebs && ebs < s3x && s3x < s3);
    }

    #[test]
    fn table8_matches_paper() {
        let clusters = table8_clusters();
        // Paper: 2 MiB / 2 MiB / 7 MiB / 16 MiB.
        let got: Vec<f64> = clusters.iter().map(table8_s3_standard).collect();
        assert!((got[0] - 1.65).abs() < 0.3, "c6g.xlarge od: {}", got[0]);
        assert!((got[1] - 2.0).abs() < 0.4, "c6g.8xlarge od: {}", got[1]);
        assert!((got[2] - 6.6).abs() < 1.0, "c6gn.xlarge od: {}", got[2]);
        assert!((got[3] - 16.8).abs() < 2.0, "c6gn.xlarge rsv: {}", got[3]);
        // Within-family constancy (od c6g.xlarge vs c6g.8xlarge ~ equal):
        assert!((got[0] - got[1]).abs() / got[1] < 0.25);
    }

    #[test]
    fn s3_express_never_breaks_even() {
        for cluster in table8_clusters() {
            assert!(
                table8_s3_express(&cluster).is_none(),
                "{} should never break even",
                cluster.label()
            );
        }
    }

    #[test]
    fn beas_formula_direct() {
        // 1 MB/s server at $1/h with $1/M requests → BEAS = 3.6 MB.
        let v = beas(1e-6, 3600.0, 1.0);
        assert!((v - 0.0036).abs() < 1e-9);
    }

    #[test]
    fn beas_with_fee_below_slope_solves() {
        // VM cost 1e-6 $/MB; fee 5e-7 $/MB; request 1e-6; free 0.5 MB.
        let v = beas_with_transfer_fee(1e-6, 5e-7, 0.5, 3.6e9 / 3600.0, 1.0).unwrap();
        // slope = 1e-6 - 5e-7 = 5e-7; size = (1e-6 - 2.5e-7)/5e-7 = 1.5 MB.
        assert!((v - 1.5).abs() < 1e-9, "{v}");
    }

    #[test]
    fn humanize_matches_paper_style() {
        assert_eq!(humanize_secs(38.0), "38s");
        assert_eq!(humanize_secs(27.0 * 60.0), "27min");
        assert_eq!(humanize_secs(12.0 * 3600.0), "12h");
        assert_eq!(humanize_secs(59.0 * 86_400.0), "59d");
    }
}
