//! # skyrise-pricing — AWS price catalog, cost metering, break-even analysis
//!
//! Three pieces:
//!
//! * [`catalog`] — the published prices and configurations the paper's
//!   Tables 1 and 2 report (Lambda, EC2 C6g/C6gn/C6gd, S3 Standard/Express,
//!   DynamoDB, EFS, EBS).
//! * [`meter`] — the usage ledger every simulated service reports into,
//!   mirroring the paper's client hook that "counts all requests, including
//!   failures and retries", and the invoice derived from it.
//! * [`breakeven`] — the Sec. 5.3 economics: both cloud variants of the
//!   five-minute rule (Table 7) and break-even shuffle access sizes
//!   (Table 8).

#![warn(missing_docs)]

pub mod breakeven;
pub mod catalog;
pub mod meter;

pub use catalog::{
    ec2_catalog, ec2_instance, Ec2InstanceSpec, LambdaPricing, SsdSpec, StoragePricing,
    StorageService, LAMBDA_MIB_PER_VCPU,
};
pub use meter::{CostReport, UsageMeter};

use std::cell::RefCell;
use std::rc::Rc;

/// The shared handle services use to report usage.
pub type SharedMeter = Rc<RefCell<UsageMeter>>;

/// Create a fresh shared meter.
pub fn shared_meter() -> SharedMeter {
    Rc::new(RefCell::new(UsageMeter::new()))
}
