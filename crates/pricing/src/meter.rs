//! Usage metering and cost estimation.
//!
//! The paper "track[s] service usage via a client hook that counts all
//! requests, including failures and retries" and derives experiment cost
//! from the price list (Sec. 4.1). [`UsageMeter`] is that hook: every
//! simulated service records its consumption here, and [`UsageMeter::report`]
//! turns the counters into an itemised invoice.

use crate::catalog::{LambdaPricing, StoragePricing, StorageService};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-storage-service usage counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StorageUsage {
    /// Read requests issued (including failures).
    pub read_requests: u64,
    /// Write requests issued (including failures).
    pub write_requests: u64,
    /// Requests rejected (throttled/timeout) — billed all the same when the
    /// service receives them, and the paper counts them explicitly.
    pub failed_requests: u64,
    /// Logical bytes successfully read.
    pub bytes_read: u64,
    /// Logical bytes successfully written.
    pub bytes_written: u64,
    /// Accumulated read-request cost (computed per request, since the
    /// DynamoDB/S3 Express unit math depends on per-request size).
    pub read_cost: f64,
    /// Accumulated write-request cost.
    pub write_cost: f64,
    /// GiB-seconds of stored capacity.
    pub gib_seconds_stored: f64,
}

/// Per-EC2-type usage counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ec2Usage {
    /// Total billed instance-seconds.
    pub instance_seconds: f64,
    /// Hourly price of this instance type.
    pub usd_per_hour: f64,
    /// Instances launched.
    pub instances_started: u64,
}

/// Lambda usage counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LambdaUsage {
    /// Function invocations.
    pub invocations: u64,
    /// Billed GB-seconds.
    pub gb_seconds: f64,
}

/// The experiment-wide usage ledger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UsageMeter {
    /// Lambda usage counters.
    pub lambda: LambdaUsage,
    /// Per-instance-type EC2 usage.
    pub ec2: BTreeMap<String, Ec2Usage>,
    /// Per-service storage usage.
    pub storage: BTreeMap<StorageService, StorageUsage>,
}

impl UsageMeter {
    /// Fresh, empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one function invocation of `memory_gb` (decimal GB) lasting
    /// `seconds` of billed duration.
    pub fn record_lambda(&mut self, memory_gb: f64, seconds: f64) {
        self.lambda.invocations += 1;
        self.lambda.gb_seconds += memory_gb * seconds;
    }

    /// Record VM runtime for an instance type at an hourly price.
    pub fn record_ec2(&mut self, instance_type: &str, usd_per_hour: f64, seconds: f64) {
        let e = self.ec2.entry(instance_type.to_string()).or_default();
        e.usd_per_hour = usd_per_hour;
        e.instance_seconds += seconds;
    }

    /// Record an instance launch (for reporting).
    pub fn record_ec2_start(&mut self, instance_type: &str) {
        self.ec2
            .entry(instance_type.to_string())
            .or_default()
            .instances_started += 1;
    }

    /// Record one storage request. Failed requests still count and cost.
    pub fn record_storage_request(
        &mut self,
        service: StorageService,
        write: bool,
        bytes: u64,
        failed: bool,
    ) {
        let pricing = StoragePricing::of(service);
        let u = self.storage.entry(service).or_default();
        let cost = pricing.request_cost(write, bytes);
        if write {
            u.write_requests += 1;
            u.write_cost += cost;
            if !failed {
                u.bytes_written += bytes;
            }
        } else {
            u.read_requests += 1;
            u.read_cost += cost;
            if !failed {
                u.bytes_read += bytes;
            }
        }
        if failed {
            u.failed_requests += 1;
        }
    }

    /// Record stored capacity over time.
    pub fn record_storage_capacity(&mut self, service: StorageService, bytes: u64, seconds: f64) {
        let u = self.storage.entry(service).or_default();
        u.gib_seconds_stored += bytes as f64 / (1u64 << 30) as f64 * seconds;
    }

    /// Total requests across services (including failures).
    pub fn total_storage_requests(&self) -> u64 {
        self.storage
            .values()
            .map(|u| u.read_requests + u.write_requests)
            .sum()
    }

    /// Produce an itemised cost report.
    pub fn report(&self) -> CostReport {
        let lambda_pricing = LambdaPricing::arm();
        let lambda_compute = {
            // Apply the usage tiers progressively.
            let mut remaining = self.lambda.gb_seconds;
            let mut floor = 0.0;
            let mut usd = 0.0;
            for &(ceil, price) in &lambda_pricing.gb_second_tiers {
                let in_tier = (remaining).min(ceil - floor);
                usd += in_tier * price;
                remaining -= in_tier;
                floor = ceil;
                if remaining <= 0.0 {
                    break;
                }
            }
            usd
        };
        let lambda_requests = self.lambda.invocations as f64 * lambda_pricing.per_request;

        let ec2_usd: f64 = self
            .ec2
            .values()
            .map(|e| e.instance_seconds / 3600.0 * e.usd_per_hour)
            .sum();

        let mut storage_requests_usd = 0.0;
        let mut storage_capacity_usd = 0.0;
        let mut per_service = BTreeMap::new();
        for (&svc, u) in &self.storage {
            let pricing = StoragePricing::of(svc);
            let req = u.read_cost + u.write_cost;
            let cap = pricing.storage_per_gib_month * u.gib_seconds_stored / (30.0 * 86_400.0);
            storage_requests_usd += req;
            storage_capacity_usd += cap;
            per_service.insert(svc, req + cap);
        }

        CostReport {
            lambda_compute_usd: lambda_compute,
            lambda_request_usd: lambda_requests,
            ec2_usd,
            storage_request_usd: storage_requests_usd,
            storage_capacity_usd,
            per_storage_service_usd: per_service,
        }
    }
}

/// An itemised invoice over a [`UsageMeter`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostReport {
    /// Lambda GB-second charges (tiered).
    pub lambda_compute_usd: f64,
    /// Lambda per-request charges.
    pub lambda_request_usd: f64,
    /// EC2 instance-hour charges.
    pub ec2_usd: f64,
    /// Storage request + transfer charges.
    pub storage_request_usd: f64,
    /// Storage capacity (GiB-month) charges.
    pub storage_capacity_usd: f64,
    /// Storage total per service.
    pub per_storage_service_usd: BTreeMap<StorageService, f64>,
}

impl CostReport {
    /// Grand total in dollars.
    pub fn total_usd(&self) -> f64 {
        self.lambda_compute_usd
            + self.lambda_request_usd
            + self.ec2_usd
            + self.storage_request_usd
            + self.storage_capacity_usd
    }

    /// Compute-only total (FaaS + IaaS).
    pub fn compute_usd(&self) -> f64 {
        self.lambda_compute_usd + self.lambda_request_usd + self.ec2_usd
    }

    /// Storage-only total.
    pub fn storage_usd(&self) -> f64 {
        self.storage_request_usd + self.storage_capacity_usd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_costs_accumulate() {
        let mut m = UsageMeter::new();
        // 1000 invocations of a 2 GB function for 1 s each.
        for _ in 0..1000 {
            m.record_lambda(2.0, 1.0);
        }
        let r = m.report();
        let expect_compute = 2000.0 * 0.0000133334;
        assert!((r.lambda_compute_usd - expect_compute).abs() < 1e-9);
        assert!((r.lambda_request_usd - 1000.0 * 2e-7).abs() < 1e-12);
    }

    #[test]
    fn lambda_tier_pricing_kicks_in() {
        let mut m = UsageMeter::new();
        m.lambda.gb_seconds = 7e9; // 6B at tier 1, 1B at tier 2
        let r = m.report();
        let expect = 6e9 * 0.0000133334 + 1e9 * 0.0000120001;
        assert!((r.lambda_compute_usd - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn ec2_hours_priced() {
        let mut m = UsageMeter::new();
        m.record_ec2("c6g.xlarge", 0.136, 7200.0);
        m.record_ec2("c6g.xlarge", 0.136, 1800.0);
        let r = m.report();
        assert!((r.ec2_usd - 0.136 * 2.5).abs() < 1e-9);
    }

    #[test]
    fn failed_requests_still_cost() {
        let mut m = UsageMeter::new();
        m.record_storage_request(StorageService::S3Standard, false, 1024, false);
        m.record_storage_request(StorageService::S3Standard, false, 1024, true);
        let r = m.report();
        assert!((r.storage_request_usd - 8e-7).abs() < 1e-12);
        let u = &m.storage[&StorageService::S3Standard];
        assert_eq!(u.failed_requests, 1);
        assert_eq!(u.bytes_read, 1024, "failed request moved no data");
    }

    #[test]
    fn keeping_s3_warm_for_100k_iops_costs_144_per_hour() {
        // The paper: "Keeping S3 warm for 100K IOPS costs $144 per hour."
        let mut m = UsageMeter::new();
        let requests_per_hour = 100_000u64 * 3600;
        // Record in bulk: same price per request.
        let per_req = StoragePricing::of(StorageService::S3Standard).request_cost(false, 1024);
        let usd = per_req * requests_per_hour as f64;
        assert!((usd - 144.0).abs() < 0.5, "{usd}");
        m.record_storage_request(StorageService::S3Standard, false, 1024, false);
        assert_eq!(m.total_storage_requests(), 1);
    }

    #[test]
    fn capacity_cost_by_service() {
        let mut m = UsageMeter::new();
        let gib = 1u64 << 30;
        m.record_storage_capacity(StorageService::DynamoDb, gib, 30.0 * 86_400.0);
        let r = m.report();
        assert!((r.storage_capacity_usd - 0.25).abs() < 1e-9);
    }

    #[test]
    fn report_totals_are_consistent() {
        let mut m = UsageMeter::new();
        m.record_lambda(1.0, 10.0);
        m.record_ec2("c6g.large", 0.068, 3600.0);
        m.record_storage_request(StorageService::S3Express, true, 1 << 20, false);
        let r = m.report();
        let sum = r.compute_usd() + r.storage_usd();
        assert!((r.total_usd() - sum).abs() < 1e-12);
        assert!(r.total_usd() > 0.068);
    }
}
