//! The EC2 VM fleet: instance launch, network provisioning from the
//! instance catalog, and lifetime billing.

use skyrise_net::{presets::ec2_nic, SharedNic};
use skyrise_pricing::{ec2_instance, Ec2InstanceSpec, SharedMeter};
use skyrise_sim::{SimCtx, SimDuration, SimTime};
use std::cell::Cell;
use std::rc::Rc;

/// A running (or terminated) virtual machine.
pub struct Vm {
    /// Instance id within the fleet.
    pub id: u64,
    /// Catalog entry this VM was launched from.
    pub spec: Ec2InstanceSpec,
    /// The VM's network interface.
    pub nic: SharedNic,
    started: SimTime,
    terminated: Cell<Option<SimTime>>,
    ctx: SimCtx,
    meter: SharedMeter,
    /// Pay the reserved rate instead of on-demand.
    reserved: bool,
}

impl Vm {
    /// vCPU count.
    pub fn vcpus(&self) -> u32 {
        self.spec.vcpus
    }

    /// Hourly price under the VM's pricing model.
    pub fn usd_per_hour(&self) -> f64 {
        if self.reserved {
            self.spec.reserved_usd_per_hour
        } else {
            self.spec.od_usd_per_hour
        }
    }

    /// Stop the VM, billing its lifetime. Idempotent.
    pub fn terminate(&self) {
        if self.terminated.get().is_some() {
            return;
        }
        let now = self.ctx.now();
        self.terminated.set(Some(now));
        let seconds = now.duration_since(self.started).as_secs_f64();
        self.meter
            .borrow_mut()
            .record_ec2(self.spec.name, self.usd_per_hour(), seconds);
    }

    /// Uptime so far (or total if terminated).
    pub fn uptime(&self) -> SimDuration {
        let end = self.terminated.get().unwrap_or(self.ctx.now());
        end.duration_since(self.started)
    }

    /// True after [`Vm::terminate`].
    pub fn is_terminated(&self) -> bool {
        self.terminated.get().is_some()
    }
}

/// Launch configuration for a batch of VMs.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Instance type name (must exist in the catalog).
    pub instance_type: String,
    /// Reserved pricing instead of on-demand.
    pub reserved: bool,
    /// Median boot time until the instance is serviceable.
    pub boot_median: SimDuration,
    /// Lognormal sigma of the boot time.
    pub boot_sigma: f64,
}

impl LaunchConfig {
    /// On-demand launch of a type with typical boot behaviour.
    pub fn on_demand(instance_type: &str) -> Self {
        LaunchConfig {
            instance_type: instance_type.to_string(),
            reserved: false,
            boot_median: SimDuration::from_secs(35),
            boot_sigma: 0.25,
        }
    }
}

/// Factory for VMs; owns the shared meter and ID sequence.
pub struct Ec2Fleet {
    ctx: SimCtx,
    meter: SharedMeter,
    next_id: Cell<u64>,
}

impl Ec2Fleet {
    /// New fleet bound to a simulation and meter.
    pub fn new(ctx: &SimCtx, meter: &SharedMeter) -> Rc<Self> {
        Rc::new(Ec2Fleet {
            ctx: ctx.clone(),
            meter: Rc::clone(meter),
            next_id: Cell::new(0),
        })
    }

    /// Launch one VM; resolves when it has booted.
    pub async fn launch(&self, cfg: &LaunchConfig) -> Rc<Vm> {
        let spec = ec2_instance(&cfg.instance_type)
            .unwrap_or_else(|| panic!("unknown instance type {}", cfg.instance_type));
        let boot = self.ctx.with_rng(|r| {
            let secs = r.gen_lognormal(cfg.boot_median.as_secs_f64().ln(), cfg.boot_sigma);
            SimDuration::from_secs_f64(secs)
        });
        self.ctx.sleep(boot).await;
        let nic = nic_for(&spec);
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        self.meter.borrow_mut().record_ec2_start(spec.name);
        Rc::new(Vm {
            id,
            spec,
            nic,
            started: self.ctx.now(),
            terminated: Cell::new(None),
            ctx: self.ctx.clone(),
            meter: Rc::clone(&self.meter),
            reserved: cfg.reserved,
        })
    }

    /// Launch `n` VMs concurrently; resolves when all have booted.
    pub async fn launch_many(self: &Rc<Self>, cfg: &LaunchConfig, n: usize) -> Vec<Rc<Vm>> {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let fleet = Rc::clone(self);
                let cfg = cfg.clone();
                self.ctx.spawn(async move { fleet.launch(&cfg).await })
            })
            .collect();
        skyrise_sim::join_all(handles).await
    }
}

/// Build a NIC from an instance's published network characteristics.
/// Instances whose bucket capacity is zero have no burst mechanism (their
/// baseline equals their burst bandwidth).
pub fn nic_for(spec: &Ec2InstanceSpec) -> SharedNic {
    if spec.net_bucket_bytes() <= 0.0 {
        skyrise_net::Nic::symmetric(skyrise_net::RateLimiter::continuous(
            spec.net_baseline_bps(),
            spec.net_baseline_bps(),
            // A slice worth of tokens keeps a pure rate limit flowing.
            spec.net_baseline_bps() * skyrise_net::DEFAULT_SLICE.as_secs_f64(),
        ))
    } else {
        ec2_nic(
            spec.net_burst_bps(),
            spec.net_baseline_bps(),
            spec.net_bucket_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_pricing::shared_meter;
    use skyrise_sim::{Sim, MIB};

    #[test]
    fn launch_boots_then_bills_on_terminate() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let meter2 = meter.clone();
        let h = sim.spawn(async move {
            let fleet = Ec2Fleet::new(&ctx, &meter2);
            let vm = fleet.launch(&LaunchConfig::on_demand("c6g.xlarge")).await;
            let boot_done = ctx.now().as_secs_f64();
            ctx.sleep(SimDuration::from_secs(3600)).await;
            vm.terminate();
            vm.terminate(); // idempotent
            (boot_done, vm.uptime().as_secs_f64())
        });
        sim.run();
        let (boot, uptime) = h.try_take().unwrap();
        assert!(boot > 15.0 && boot < 90.0, "boot {boot}");
        assert!((uptime - 3600.0).abs() < 1e-6);
        let report = meter.borrow().report();
        assert!((report.ec2_usd - 0.136).abs() < 1e-9, "{}", report.ec2_usd);
        assert_eq!(meter.borrow().ec2["c6g.xlarge"].instances_started, 1);
    }

    #[test]
    fn launch_many_boots_in_parallel() {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let fleet = Ec2Fleet::new(&ctx, &meter);
            let vms = fleet
                .launch_many(&LaunchConfig::on_demand("c6g.large"), 64)
                .await;
            (vms.len(), ctx.now().as_secs_f64())
        });
        sim.run();
        let (n, elapsed) = h.try_take().unwrap();
        assert_eq!(n, 64);
        // Parallel boot: bounded by the slowest instance, not the sum.
        assert!(elapsed < 120.0, "elapsed {elapsed}");
    }

    #[test]
    fn reserved_pricing_applies() {
        let mut sim = Sim::new(3);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let fleet = Ec2Fleet::new(&ctx, &meter);
            let cfg = LaunchConfig {
                reserved: true,
                ..LaunchConfig::on_demand("c6gn.xlarge")
            };
            let vm = fleet.launch(&cfg).await;
            vm.usd_per_hour()
        });
        sim.run();
        assert!((h.try_take().unwrap() - 0.0676).abs() < 1e-9);
    }

    #[test]
    fn nic_matches_catalog_bandwidth() {
        let spec = ec2_instance("c6gn.2xlarge").unwrap();
        let nic = nic_for(&spec);
        let n = nic.borrow();
        // 25 Gbps burst = 3.125 GB/s.
        assert!((n.inbound.burst_rate() - 25e9 / 8.0).abs() < 1.0);
        assert!((n.inbound.baseline_rate() - 12.5e9 / 8.0).abs() < 1.0);
    }

    #[test]
    fn large_instances_have_no_burst() {
        let spec = ec2_instance("c6g.16xlarge").unwrap();
        let nic = nic_for(&spec);
        let n = nic.borrow();
        assert!((n.inbound.burst_rate() - n.inbound.baseline_rate()).abs() < 1.0);
        // And the bucket holds well under a second of traffic.
        assert!(n.inbound.capacity() < n.inbound.baseline_rate() * 0.1);
        let _ = MIB;
    }

    #[test]
    #[should_panic(expected = "unknown instance type")]
    fn unknown_type_panics() {
        let mut sim = Sim::new(4);
        let ctx = sim.ctx();
        let meter = shared_meter();
        sim.spawn(async move {
            let fleet = Ec2Fleet::new(&ctx, &meter);
            fleet.launch(&LaunchConfig::on_demand("z9.mega")).await;
        });
        sim.run();
    }
}
