//! The Lambda FaaS platform model (paper Sec. 2.1, Fig. 1).
//!
//! Modelled control-plane behaviour:
//!
//! * **Admission**: an account-level quota on concurrent executions
//!   (the paper's raised quota: 10,000).
//! * **Burst scaling**: new sandboxes draw from a token bucket with a
//!   3,000-instance initial burst refilled at 500/minute (region-scaled).
//!   Invocations needing a sandbox wait for a token — this is what makes
//!   large cluster startup slow in contended regions.
//! * **Coldstarts**: placement + binary download + runtime init, sampled
//!   from the region profile; "keeping binary sizes small" shortens them.
//! * **Warm pool**: finished sandboxes return to a per-function pool and
//!   expire after a sampled idle lifetime (5–15 minutes).
//! * **Sandbox NICs**: every sandbox gets Lambda's dual token-bucket NIC
//!   with a small per-sandbox burst-rate perturbation ("high variation for
//!   burst throughputs, yet very stable burst capacities").
//! * **Billing**: GB-seconds at millisecond granularity plus a per-request
//!   fee, metered through `skyrise-pricing`.

use crate::region::Region;
use skyrise_net::{presets, SharedNic};
use skyrise_pricing::{SharedMeter, LAMBDA_MIB_PER_VCPU};
use skyrise_sim::faults::INJECTED_FAILURE;
use skyrise_sim::telemetry::{Counter, Gauge, HistogramHandle, MetricRegistry};
use skyrise_sim::{race, Either, SimCtx, SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

/// Boxed local future returned by handlers.
pub type LocalBoxFuture<T> = Pin<Box<dyn Future<Output = T>>>;

/// A registered function body. Receives its execution environment and the
/// request payload; returns a response payload or an error message.
pub type Handler = Rc<dyn Fn(ExecEnv, String) -> LocalBoxFuture<Result<String, String>>>;

/// What the function body sees of its sandbox.
#[derive(Clone)]
pub struct ExecEnv {
    /// Simulation context.
    pub ctx: SimCtx,
    /// The sandbox (or host VM) NIC — storage requests should pass it.
    pub nic: SharedNic,
    /// True when this invocation cold-started its sandbox.
    pub cold_start: bool,
    /// vCPU share of the sandbox.
    pub vcpus: f64,
    /// Configured memory (MiB).
    pub memory_mib: u64,
    /// Sandbox or VM identifier (for tracing).
    pub instance_id: u64,
}

/// Static configuration of a deployed function.
#[derive(Debug, Clone)]
pub struct FunctionConfig {
    /// Deployed function name.
    pub name: String,
    /// Memory size (MiB), 128–10,240. Determines the vCPU share.
    pub memory_mib: u64,
    /// Deployment artifact size — drives coldstart download time. The
    /// engine keeps this under 10 MiB (paper Sec. 3.2).
    pub binary_size: u64,
}

impl FunctionConfig {
    /// A worker-sized function: the paper's 7,076 MiB (4 vCPUs).
    pub fn worker(name: &str) -> Self {
        FunctionConfig {
            name: name.to_string(),
            memory_mib: 7_076,
            binary_size: 8 << 20,
        }
    }

    /// vCPU share: 1 vCPU per 1,769 MiB.
    pub fn vcpus(&self) -> f64 {
        self.memory_mib as f64 / LAMBDA_MIB_PER_VCPU
    }

    /// Memory in decimal gigabytes (the billing unit).
    pub fn memory_gb(&self) -> f64 {
        self.memory_mib as f64 * 1024.0 * 1024.0 / 1e9
    }
}

/// Invocation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaasError {
    /// No function registered under this name.
    UnknownFunction(String),
    /// Concurrent-executions quota exceeded (HTTP 429).
    TooManyRequests,
    /// Request or response payload above the 6 MB limit.
    PayloadTooLarge(usize),
    /// The handler returned an error.
    HandlerFailed(String),
    /// The sandbox died mid-run (injected by the fault plan). The partial
    /// run is billed; the sandbox never returns to the warm pool.
    SandboxCrashed,
}

impl fmt::Display for FaasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaasError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            FaasError::TooManyRequests => write!(f, "concurrency quota exceeded"),
            FaasError::PayloadTooLarge(n) => write!(f, "payload of {n} B over the 6 MB limit"),
            FaasError::HandlerFailed(e) => write!(f, "handler failed: {e}"),
            FaasError::SandboxCrashed => write!(f, "sandbox crashed mid-run"),
        }
    }
}

impl std::error::Error for FaasError {}

/// Result of a successful invocation.
#[derive(Debug, Clone)]
pub struct InvokeResult {
    /// The handler's response payload.
    pub output: String,
    /// Billed duration (includes coldstart initialisation).
    pub duration: SimDuration,
    /// Whether a new sandbox had to be created.
    pub cold_start: bool,
    /// Sandbox/VM that served the invocation.
    pub sandbox_id: u64,
}

/// Lambda payload ceiling (synchronous invocations): 6 MB.
pub const MAX_PAYLOAD: usize = 6 * 1024 * 1024;
/// Binary download bandwidth during coldstarts.
const ARTIFACT_BW: f64 = 50e6;
/// Sandbox idle lifetime range (paper: minutes-scale, measured by the
/// platform microbenchmark).
const IDLE_LIFETIME_MIN: f64 = 300.0;
const IDLE_LIFETIME_MAX: f64 = 900.0;

struct Sandbox {
    id: u64,
    nic: SharedNic,
    last_used: SimTime,
    idle_lifetime: SimDuration,
}

struct Registered {
    config: FunctionConfig,
    handler: Handler,
    warm: VecDeque<Sandbox>,
}

/// Cached telemetry handles (DESIGN.md §10), resolved once at platform
/// construction so the invoke hot path never touches the registry's name
/// maps. Every handle is a no-op when the simulation has no registry.
struct FaasMetrics {
    cold_starts: Counter,
    warm_starts: Counter,
    expired: Counter,
    crashes: Counter,
    invokes: Counter,
    throttles: Counter,
    token_waits: Counter,
    coldstart_secs: HistogramHandle,
    warmstart_secs: HistogramHandle,
    invoke_secs: HistogramHandle,
    warm_pool: Gauge,
    in_flight: Gauge,
}

impl FaasMetrics {
    fn new(reg: &MetricRegistry) -> Self {
        FaasMetrics {
            cold_starts: reg.counter("faas.sandbox.cold_starts"),
            warm_starts: reg.counter("faas.sandbox.warm_starts"),
            expired: reg.counter("faas.sandbox.expired"),
            crashes: reg.counter("faas.sandbox.crashes"),
            invokes: reg.counter("faas.invoke.count"),
            throttles: reg.counter("faas.invoke.throttles"),
            token_waits: reg.counter("faas.scaling.token_waits"),
            coldstart_secs: reg.histogram("faas.coldstart.secs"),
            warmstart_secs: reg.histogram("faas.warmstart.secs"),
            invoke_secs: reg.histogram("faas.invoke.latency_secs"),
            warm_pool: reg.gauge("faas.pool.warm_size"),
            in_flight: reg.gauge("faas.invoke.in_flight"),
        }
    }
}

/// The FaaS platform. Cheap to clone via `Rc`.
pub struct LambdaPlatform {
    ctx: SimCtx,
    meter: SharedMeter,
    region: Region,
    functions: RefCell<BTreeMap<String, Registered>>,
    /// Sandbox-scaling token bucket (3,000 burst + 500/min).
    scaling: RefCell<skyrise_net::RateLimiter>,
    concurrency_quota: u32,
    concurrent: Cell<u32>,
    next_sandbox: Cell<u64>,
    /// Statistics: coldstarts and warmstarts served.
    cold_starts: Cell<u64>,
    warm_starts: Cell<u64>,
    metrics: FaasMetrics,
}

impl LambdaPlatform {
    /// Platform in a region with the paper's raised 10K concurrency quota.
    pub fn new(ctx: &SimCtx, meter: &SharedMeter, region: Region) -> Rc<Self> {
        let rate = 500.0 / 60.0 * region.scaling_rate_factor;
        let metrics = FaasMetrics::new(&ctx.metrics());
        Rc::new(LambdaPlatform {
            ctx: ctx.clone(),
            meter: Rc::clone(meter),
            region,
            functions: RefCell::new(BTreeMap::new()),
            scaling: RefCell::new(skyrise_net::RateLimiter::continuous(
                1e9, // tokens are the constraint, not the instantaneous rate
                rate, 3_000.0,
            )),
            concurrency_quota: 10_000,
            concurrent: Cell::new(0),
            next_sandbox: Cell::new(0),
            cold_starts: Cell::new(0),
            warm_starts: Cell::new(0),
            metrics,
        })
    }

    /// Deploy (or replace) a function.
    pub fn register(&self, config: FunctionConfig, handler: Handler) {
        self.functions.borrow_mut().insert(
            config.name.clone(),
            Registered {
                config,
                handler,
                warm: VecDeque::new(),
            },
        );
    }

    /// The region this platform runs in.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The simulation context this platform runs in.
    pub fn ctx(&self) -> SimCtx {
        self.ctx.clone()
    }

    /// The usage meter this platform bills into.
    pub fn meter(&self) -> SharedMeter {
        Rc::clone(&self.meter)
    }

    /// Consume `n` sandbox-scaling tokens up front — models an account
    /// whose burst pool is largely spent by co-located workloads, so
    /// cluster startup depends on the region's refill rate (used by the
    /// Table 5 variability experiment).
    pub fn consume_scaling_burst(&self, n: f64) {
        let mut s = self.scaling.borrow_mut();
        s.advance(self.ctx.now());
        let take = n.min(s.available());
        s.consume(self.ctx.now(), take);
    }

    /// Coldstarts served so far.
    pub fn cold_start_count(&self) -> u64 {
        self.cold_starts.get()
    }

    /// Warmstarts served so far.
    pub fn warm_start_count(&self) -> u64 {
        self.warm_starts.get()
    }

    /// Currently executing invocations.
    pub fn concurrent_executions(&self) -> u32 {
        self.concurrent.get()
    }

    /// Invoke a function synchronously.
    pub async fn invoke(
        self: &Rc<Self>,
        name: &str,
        payload: String,
    ) -> Result<InvokeResult, FaasError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(FaasError::PayloadTooLarge(payload.len()));
        }
        let (config, handler) = {
            let fns = self.functions.borrow();
            let reg = fns
                .get(name)
                .ok_or_else(|| FaasError::UnknownFunction(name.to_string()))?;
            (reg.config.clone(), Rc::clone(&reg.handler))
        };
        let tracer = self.ctx.tracer();
        let lane = tracer.next_lane();
        if self.concurrent.get() >= self.concurrency_quota {
            tracer
                .instant(&self.ctx, "faas", lane, "throttle-429")
                .attr("function", name)
                .attr("concurrent", self.concurrent.get());
            self.metrics.throttles.inc();
            return Err(FaasError::TooManyRequests);
        }
        self.concurrent.set(self.concurrent.get() + 1);
        self.metrics.in_flight.set(self.concurrent.get() as f64);
        let started = self.ctx.now();
        let span = tracer.span(&self.ctx, "faas", lane, "invoke");
        span.attr("function", name)
            .attr("payload_bytes", payload.len())
            .attr("concurrent", self.concurrent.get());

        let (sandbox, cold) = self.acquire_sandbox(name, &config, lane).await;
        let sandbox_id = sandbox.id;
        let env = ExecEnv {
            ctx: self.ctx.clone(),
            nic: Rc::clone(&sandbox.nic),
            cold_start: cold,
            vcpus: config.vcpus(),
            memory_mib: config.memory_mib,
            instance_id: sandbox_id,
        };
        let run_span = tracer.span(&self.ctx, "faas", lane, "run");
        run_span.attr("sandbox", sandbox_id).attr("cold", cold);
        // Fault plan decision points, sampled up front so the draw order is
        // independent of handler behaviour. A crash trumps a transient.
        let faults = self.ctx.faults();
        let crash_after = faults.sample_sandbox_crash();
        let transient = crash_after.is_none() && faults.sample_invoke_transient();
        // `Some(result)` = handler finished; `None` = the sandbox died first
        // (the abandoned handler future is dropped mid-run).
        let run = match crash_after {
            Some(after) => match race(handler(env, payload), self.ctx.sleep(after)).await {
                Either::Left(r) => Some(r),
                Either::Right(()) => None,
            },
            None => Some(handler(env, payload).await),
        };
        drop(run_span);
        let now = self.ctx.now();
        let duration = now.duration_since(started);
        self.metrics.invokes.inc();
        self.metrics.invoke_secs.record_duration(duration);

        // Bill, return the sandbox, release concurrency — also on failure.
        let gb_s_before = self.meter.borrow().lambda.gb_seconds;
        self.meter
            .borrow_mut()
            .record_lambda(config.memory_gb(), duration.as_secs_f64());
        // Sanitizer cross-check: the metered GB-seconds delta must equal the
        // invoke span's wall window times configured memory. A drift here
        // means billing and tracing disagree about how long the run took.
        let san = self.ctx.sanitizer();
        if san.enabled() {
            let delta = self.meter.borrow().lambda.gb_seconds - gb_s_before;
            san.check_close(delta, config.memory_gb() * duration.as_secs_f64(), || {
                format!("lambda GB-seconds metered for `{name}` vs invoke span window")
            });
        }
        if run.is_some() {
            self.release_sandbox(name, sandbox, lane);
        } else {
            // Crashed sandboxes never return to the warm pool.
            tracer
                .instant(&self.ctx, "faas", lane, "fault-crash")
                .attr("function", name)
                .attr("sandbox", sandbox_id);
            self.metrics.crashes.inc();
            drop(sandbox);
        }
        self.concurrent.set(self.concurrent.get() - 1);
        self.metrics.in_flight.set(self.concurrent.get() as f64);

        match run {
            None => Err(FaasError::SandboxCrashed),
            Some(result) => {
                if transient {
                    tracer
                        .instant(&self.ctx, "faas", lane, "fault-transient")
                        .attr("function", name)
                        .attr("sandbox", sandbox_id);
                    return Err(FaasError::HandlerFailed(INJECTED_FAILURE.to_string()));
                }
                match result {
                    Ok(output) => {
                        if output.len() > MAX_PAYLOAD {
                            return Err(FaasError::PayloadTooLarge(output.len()));
                        }
                        Ok(InvokeResult {
                            output,
                            duration,
                            cold_start: cold,
                            sandbox_id,
                        })
                    }
                    Err(e) => Err(FaasError::HandlerFailed(e)),
                }
            }
        }
    }

    /// Pre-provision `n` warm sandboxes for a function ("the functions are
    /// warmed up ... before the experiment begins", Sec. 5.2).
    pub async fn warm(self: &Rc<Self>, name: &str, n: usize) {
        let config = {
            let fns = self.functions.borrow();
            fns.get(name)
                .unwrap_or_else(|| panic!("unknown function {name}"))
                .config
                .clone()
        };
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let this = Rc::clone(self);
                let name = name.to_string();
                let config = config.clone();
                self.ctx.spawn(async move {
                    let lane = this.ctx.tracer().next_lane();
                    let (sandbox, _) = this.acquire_sandbox(&name, &config, lane).await;
                    this.release_sandbox(&name, sandbox, lane);
                })
            })
            .collect();
        skyrise_sim::join_all(handles).await;
    }

    async fn acquire_sandbox(
        &self,
        name: &str,
        config: &FunctionConfig,
        lane: u64,
    ) -> (Sandbox, bool) {
        // Warm path: pop a live sandbox, lazily expiring dead ones.
        let now = self.ctx.now();
        let (popped, pool_len) = {
            let mut fns = self.functions.borrow_mut();
            let reg = fns.get_mut(name).expect("registered");
            let mut expired = 0u64;
            let popped = loop {
                match reg.warm.pop_front() {
                    Some(sb) => {
                        if now.duration_since(sb.last_used) <= sb.idle_lifetime {
                            break Some(sb);
                        }
                        // expired: drop and keep looking
                        expired += 1;
                    }
                    None => break None,
                }
            };
            self.metrics.expired.add(expired);
            (popped, reg.warm.len())
        };
        self.metrics.warm_pool.set(pool_len as f64);
        let tracer = self.ctx.tracer();
        if let Some(sb) = popped {
            let span = tracer.span(&self.ctx, "faas", lane, "warmstart");
            span.attr("sandbox", sb.id);
            let lat = self.ctx.with_rng(|r| self.region.sample_warmstart(r));
            self.ctx.sleep(lat).await;
            self.warm_starts.set(self.warm_starts.get() + 1);
            self.metrics.warm_starts.inc();
            self.metrics.warmstart_secs.record_duration(lat);
            return (sb, false);
        }

        // Cold path: wait for a scaling token, then create the sandbox.
        let mut token_waited = false;
        loop {
            let (granted, available) = {
                let mut s = self.scaling.borrow_mut();
                s.advance(self.ctx.now());
                if s.available() >= 1.0 {
                    s.consume(self.ctx.now(), 1.0);
                    (true, s.available())
                } else {
                    (false, s.available())
                }
            };
            if granted {
                break;
            }
            if !token_waited {
                tracer
                    .instant(&self.ctx, "faas", lane, "scaling-token-wait")
                    .attr("burst_tokens", available);
                self.metrics.token_waits.inc();
                token_waited = true;
            }
            self.ctx.sleep(SimDuration::from_millis(200)).await;
        }
        let mut init = self
            .ctx
            .with_rng(|r| self.region.sample_coldstart(r, self.ctx.now()));
        if let Some(factor) = self.ctx.faults().sample_coldstart_spike() {
            tracer
                .instant(&self.ctx, "faas", lane, "fault-coldstart-spike")
                .attr("factor", factor)
                .attr("init_s", init.as_secs_f64());
            init = SimDuration::from_secs_f64(init.as_secs_f64() * factor);
        }
        let download = SimDuration::from_secs_f64(config.binary_size as f64 / ARTIFACT_BW);
        let span = tracer.span(&self.ctx, "faas", lane, "coldstart");
        span.attr("binary_size", config.binary_size)
            .attr("init_s", init.as_secs_f64())
            .attr("download_s", download.as_secs_f64());
        self.ctx.sleep(init + download).await;
        self.cold_starts.set(self.cold_starts.get() + 1);
        self.metrics.cold_starts.inc();
        self.metrics.coldstart_secs.record_duration(init + download);
        span.end();

        let id = self.next_sandbox.get();
        self.next_sandbox.set(id + 1);
        let (in_scale, out_scale, lifetime) = self.ctx.with_rng(|r| {
            (
                r.gen_normal(1.0, 0.06).clamp(0.7, 1.3),
                r.gen_normal(1.0, 0.10).clamp(0.6, 1.3),
                r.gen_range_f64(IDLE_LIFETIME_MIN, IDLE_LIFETIME_MAX),
            )
        });
        (
            Sandbox {
                id,
                nic: presets::lambda_nic_scaled(in_scale, out_scale),
                last_used: self.ctx.now(),
                idle_lifetime: SimDuration::from_secs_f64(lifetime),
            },
            true,
        )
    }

    fn release_sandbox(&self, name: &str, mut sandbox: Sandbox, lane: u64) {
        sandbox.last_used = self.ctx.now();
        self.ctx
            .tracer()
            .instant(&self.ctx, "faas", lane, "reclaim")
            .attr("sandbox", sandbox.id);
        if let Some(reg) = self.functions.borrow_mut().get_mut(name) {
            reg.warm.push_back(sandbox);
            self.metrics.warm_pool.set(reg.warm.len() as f64);
        }
    }

    /// Number of live warm sandboxes for a function (expired ones are only
    /// reaped on acquisition, so this is an upper bound).
    pub fn warm_pool_size(&self, name: &str) -> usize {
        self.functions
            .borrow()
            .get(name)
            .map_or(0, |r| r.warm.len())
    }
}

/// Convenience: box a handler closure.
pub fn handler<F, Fut>(f: F) -> Handler
where
    F: Fn(ExecEnv, String) -> Fut + 'static,
    Fut: Future<Output = Result<String, String>> + 'static,
{
    Rc::new(move |env, payload| Box::pin(f(env, payload)) as LocalBoxFuture<_>)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_pricing::shared_meter;
    use skyrise_sim::{join_all, Sim};

    fn echo_handler() -> Handler {
        handler(|env: ExecEnv, payload: String| async move {
            env.ctx.sleep(SimDuration::from_millis(50)).await;
            Ok(format!("echo:{payload}"))
        })
    }

    #[test]
    fn cold_then_warm_invocations() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            platform.register(FunctionConfig::worker("echo"), echo_handler());
            let first = platform.invoke("echo", "a".into()).await.unwrap();
            let second = platform.invoke("echo", "b".into()).await.unwrap();
            (first, second)
        });
        sim.run();
        let (first, second) = h.try_take().unwrap();
        assert!(first.cold_start);
        assert!(!second.cold_start);
        assert_eq!(first.output, "echo:a");
        // Coldstart includes init + binary download; warm is just ~ms.
        assert!(first.duration.as_secs_f64() > second.duration.as_secs_f64() + 0.05);
    }

    #[test]
    fn billing_accumulates_gb_seconds() {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let meter2 = meter.clone();
        sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter2, Region::us_east_1());
            platform.register(FunctionConfig::worker("echo"), echo_handler());
            for _ in 0..5 {
                platform.invoke("echo", String::new()).await.unwrap();
            }
        });
        sim.run();
        let m = meter.borrow();
        assert_eq!(m.lambda.invocations, 5);
        // 7,076 MiB = 7.42 GB for >= 50ms each.
        assert!(m.lambda.gb_seconds > 5.0 * 7.4 * 0.05);
    }

    #[test]
    fn unknown_function_rejected() {
        let mut sim = Sim::new(3);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            platform.invoke("nope", String::new()).await.err()
        });
        sim.run();
        assert!(matches!(
            h.try_take().unwrap(),
            Some(FaasError::UnknownFunction(_))
        ));
    }

    #[test]
    fn initial_burst_allows_3000_then_scaling_slows() {
        let mut sim = Sim::new(4);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            platform.register(
                FunctionConfig {
                    name: "f".into(),
                    memory_mib: 1769,
                    binary_size: 1 << 20,
                },
                echo_handler(),
            );
            // 3,200 concurrent first invocations: 3,000 ride the burst,
            // 200 wait for the 500/min refill.
            let handles: Vec<_> = (0..3200)
                .map(|_| {
                    let p = Rc::clone(&platform);
                    ctx.spawn(async move { p.invoke("f", String::new()).await.unwrap().duration })
                })
                .collect();
            let durations = join_all(handles).await;
            let slow = durations.iter().filter(|d| d.as_secs_f64() > 5.0).count();
            (slow, platform.cold_start_count())
        });
        sim.run();
        let (slow, colds) = h.try_take().unwrap();
        assert_eq!(colds, 3200);
        // ~200 invocations had to wait for refill (500/min -> up to ~24s).
        assert!((150..=320).contains(&slow), "slow {slow}");
    }

    #[test]
    fn warm_pool_expires_after_idle_lifetime() {
        let mut sim = Sim::new(5);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            platform.register(FunctionConfig::worker("f"), echo_handler());
            platform.invoke("f", String::new()).await.unwrap();
            // Within the minimum lifetime: warm.
            ctx.sleep(SimDuration::from_secs(120)).await;
            let warm = platform.invoke("f", String::new()).await.unwrap();
            // Far beyond the maximum lifetime: cold again.
            ctx.sleep(SimDuration::from_secs(3600)).await;
            let cold = platform.invoke("f", String::new()).await.unwrap();
            (warm.cold_start, cold.cold_start)
        });
        sim.run();
        let (warm_was_cold, cold_was_cold) = h.try_take().unwrap();
        assert!(!warm_was_cold);
        assert!(cold_was_cold);
    }

    #[test]
    fn prewarming_eliminates_coldstarts() {
        let mut sim = Sim::new(6);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            platform.register(FunctionConfig::worker("f"), echo_handler());
            platform.warm("f", 32).await;
            assert_eq!(platform.warm_pool_size("f"), 32);
            let handles: Vec<_> = (0..32)
                .map(|_| {
                    let p = Rc::clone(&platform);
                    ctx.spawn(async move { p.invoke("f", String::new()).await.unwrap().cold_start })
                })
                .collect();
            join_all(handles).await.iter().filter(|&&c| c).count()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn handler_failure_is_billed_and_reported() {
        let mut sim = Sim::new(7);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let meter2 = meter.clone();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter2, Region::us_east_1());
            platform.register(
                FunctionConfig::worker("fail"),
                handler(|_env, _p| async move { Err("boom".to_string()) }),
            );
            platform.invoke("fail", String::new()).await.err()
        });
        sim.run();
        assert!(matches!(
            h.try_take().unwrap(),
            Some(FaasError::HandlerFailed(e)) if e == "boom"
        ));
        assert_eq!(meter.borrow().lambda.invocations, 1);
    }

    #[test]
    fn payload_limit_enforced() {
        let mut sim = Sim::new(8);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            platform.register(FunctionConfig::worker("f"), echo_handler());
            let big = "x".repeat(MAX_PAYLOAD + 1);
            platform.invoke("f", big).await.err()
        });
        sim.run();
        assert!(matches!(
            h.try_take().unwrap(),
            Some(FaasError::PayloadTooLarge(_))
        ));
    }

    #[test]
    fn warm_reuse_returns_serving_sandbox_id() {
        let mut sim = Sim::new(10);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            platform.register(FunctionConfig::worker("other"), echo_handler());
            platform.register(FunctionConfig::worker("f"), echo_handler());
            // Burn sandbox id 0 on another function so "f"'s sandbox has a
            // nonzero id — a regression to the hardcoded `sandbox_id: 0`
            // cannot pass this test.
            let other = platform.invoke("other", String::new()).await.unwrap();
            let first = platform.invoke("f", String::new()).await.unwrap();
            let second = platform.invoke("f", String::new()).await.unwrap();
            (other, first, second)
        });
        sim.run();
        let (other, first, second) = h.try_take().unwrap();
        assert_eq!(other.sandbox_id, 0);
        assert!(first.cold_start);
        assert_eq!(first.sandbox_id, 1);
        // Back-to-back invokes reuse the same warm sandbox.
        assert!(!second.cold_start);
        assert_eq!(second.sandbox_id, first.sandbox_id);
    }

    #[test]
    fn concurrent_invokes_use_distinct_sandboxes() {
        let mut sim = Sim::new(11);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            platform.register(FunctionConfig::worker("f"), echo_handler());
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let p = Rc::clone(&platform);
                    ctx.spawn(async move { p.invoke("f", String::new()).await.unwrap().sandbox_id })
                })
                .collect();
            join_all(handles).await
        });
        sim.run();
        let mut ids = h.try_take().unwrap();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "concurrent invokes must not share a sandbox");
    }

    #[test]
    fn injected_transient_fails_but_bills_and_keeps_sandbox() {
        let mut sim = Sim::new(12);
        sim.install_faults(skyrise_sim::FaultConfig {
            invoke_transient_prob: 1.0,
            ..skyrise_sim::FaultConfig::default()
        });
        let ctx = sim.ctx();
        let meter = shared_meter();
        let meter2 = meter.clone();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter2, Region::us_east_1());
            platform.register(FunctionConfig::worker("f"), echo_handler());
            let err = platform.invoke("f", String::new()).await.err();
            (err, platform.warm_pool_size("f"))
        });
        sim.run();
        let (err, warm) = h.try_take().unwrap();
        assert!(matches!(err, Some(FaasError::HandlerFailed(e)) if e == INJECTED_FAILURE));
        // The handler ran in full: billed and its sandbox reclaimed.
        assert_eq!(meter.borrow().lambda.invocations, 1);
        assert_eq!(warm, 1);
    }

    #[test]
    fn injected_crash_destroys_sandbox_and_bills_partial_run() {
        let mut sim = Sim::new(13);
        sim.install_faults(skyrise_sim::FaultConfig {
            sandbox_crash_prob: 1.0,
            crash_horizon_secs: 0.01, // crash well inside the 50ms handler
            ..skyrise_sim::FaultConfig::default()
        });
        let ctx = sim.ctx();
        let meter = shared_meter();
        let meter2 = meter.clone();
        let h = sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter2, Region::us_east_1());
            platform.register(FunctionConfig::worker("f"), echo_handler());
            let err = platform.invoke("f", String::new()).await.err();
            (
                err,
                platform.warm_pool_size("f"),
                platform.concurrent_executions(),
            )
        });
        sim.run();
        let (err, warm, concurrent) = h.try_take().unwrap();
        assert_eq!(err, Some(FaasError::SandboxCrashed));
        assert_eq!(warm, 0, "crashed sandbox must not be reclaimed");
        assert_eq!(concurrent, 0, "crash must release the concurrency slot");
        assert_eq!(meter.borrow().lambda.invocations, 1);
    }

    #[test]
    fn coldstart_spike_inflates_init_time() {
        fn cold_duration(spike: bool) -> f64 {
            let mut sim = Sim::new(14);
            if spike {
                sim.install_faults(skyrise_sim::FaultConfig {
                    coldstart_spike_prob: 1.0,
                    coldstart_spike_factor: 10.0,
                    ..skyrise_sim::FaultConfig::default()
                });
            }
            let ctx = sim.ctx();
            let meter = shared_meter();
            let h = sim.spawn(async move {
                let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
                platform.register(FunctionConfig::worker("f"), echo_handler());
                platform
                    .invoke("f", String::new())
                    .await
                    .unwrap()
                    .duration
                    .as_secs_f64()
            });
            sim.run();
            h.try_take().unwrap()
        }
        // Same seed, so the underlying coldstart sample is identical; the
        // spiked run must be several times slower.
        assert!(cold_duration(true) > 3.0 * cold_duration(false));
    }

    #[test]
    fn telemetry_records_starts_and_latencies() {
        let mut sim = Sim::new(15);
        let reg = sim.install_metrics();
        let ctx = sim.ctx();
        let meter = shared_meter();
        sim.spawn(async move {
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            platform.register(FunctionConfig::worker("f"), echo_handler());
            platform.invoke("f", String::new()).await.unwrap();
            platform.invoke("f", String::new()).await.unwrap();
        });
        sim.run();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["faas.sandbox.cold_starts"], 1);
        assert_eq!(snap.counters["faas.sandbox.warm_starts"], 1);
        assert_eq!(snap.counters["faas.invoke.count"], 2);
        assert_eq!(snap.histograms["faas.invoke.latency_secs"].count(), 2);
        assert_eq!(snap.histograms["faas.coldstart.secs"].count(), 1);
        assert_eq!(snap.gauges["faas.invoke.in_flight"], 1.0);
        assert!(snap.gauges["faas.pool.warm_size"] >= 1.0);
    }

    #[test]
    fn eu_cluster_startup_is_slower() {
        // 500 cold invocations beyond the (shrunken) burst: the EU's lower
        // scaling rate must make the fleet take noticeably longer.
        fn cluster_time(region: Region, seed: u64) -> f64 {
            let mut sim = Sim::new(seed);
            let ctx = sim.ctx();
            let meter = shared_meter();
            let h = sim.spawn(async move {
                let platform = LambdaPlatform::new(&ctx, &meter, region);
                // Shrink the burst so the test is fast: consume most of it.
                platform.register(
                    FunctionConfig {
                        name: "f".into(),
                        memory_mib: 1769,
                        binary_size: 1 << 20,
                    },
                    echo_handler(),
                );
                {
                    let mut s = platform.scaling.borrow_mut();
                    s.advance(ctx.now());
                    s.consume(ctx.now(), 2_950.0);
                }
                let handles: Vec<_> = (0..200)
                    .map(|_| {
                        let p = Rc::clone(&platform);
                        ctx.spawn(async move {
                            p.invoke("f", String::new()).await.unwrap();
                        })
                    })
                    .collect();
                join_all(handles).await;
                ctx.now().as_secs_f64()
            });
            sim.run();
            h.try_take().unwrap()
        }
        let us = cluster_time(Region::us_east_1(), 9);
        let eu = cluster_time(Region::eu_west_1(), 9);
        assert!(eu > 1.3 * us, "us {us}s vs eu {eu}s");
    }
}
