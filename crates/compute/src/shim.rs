//! The IaaS shim layer: "a shim layer that resembles the Lambda execution
//! environment to run functions on VM hosts" (paper Sec. 3.1).
//!
//! The same handler binaries registered with the FaaS platform run here on
//! a provisioned VM cluster. Invocations are queued and distributed across
//! the available worker slots (paper Sec. 3.2); there are no coldstarts
//! and no per-invocation billing — the VMs bill by lifetime.

use crate::ec2::Vm;
use crate::faas::{ExecEnv, FaasError, FunctionConfig, Handler, InvokeResult};
use skyrise_sim::sync::Semaphore;
use skyrise_sim::SimCtx;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A VM cluster running function handlers behind the shim layer.
pub struct ShimCluster {
    ctx: SimCtx,
    vms: Vec<Rc<Vm>>,
    /// One slot per `vcpus_per_worker` vCPUs on each VM.
    slots: Semaphore,
    free_slots: RefCell<Vec<usize>>, // VM indices
    functions: RefCell<BTreeMap<String, (FunctionConfig, Handler)>>,
    vcpus_per_worker: u32,
}

impl ShimCluster {
    /// Build a cluster over booted VMs; each VM contributes
    /// `vcpus / vcpus_per_worker` worker slots (at least one).
    pub fn new(ctx: &SimCtx, vms: Vec<Rc<Vm>>, vcpus_per_worker: u32) -> Rc<Self> {
        assert!(!vms.is_empty(), "cluster needs at least one VM");
        let mut free = Vec::new();
        for (idx, vm) in vms.iter().enumerate() {
            let slots = (vm.vcpus() / vcpus_per_worker).max(1);
            for _ in 0..slots {
                free.push(idx);
            }
        }
        let total = free.len();
        Rc::new(ShimCluster {
            ctx: ctx.clone(),
            vms,
            slots: Semaphore::new(total),
            free_slots: RefCell::new(free),
            functions: RefCell::new(BTreeMap::new()),
            vcpus_per_worker,
        })
    }

    /// Deploy a function binary onto the cluster.
    pub fn register(&self, config: FunctionConfig, handler: Handler) {
        self.functions
            .borrow_mut()
            .insert(config.name.clone(), (config, handler));
    }

    /// Total worker slots.
    pub fn total_slots(&self) -> usize {
        self.vms
            .iter()
            .map(|vm| (vm.vcpus() / self.vcpus_per_worker).max(1) as usize)
            .sum()
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// The cluster's hourly cost (peak-provisioned).
    pub fn usd_per_hour(&self) -> f64 {
        self.vms.iter().map(|vm| vm.usd_per_hour()).sum()
    }

    /// Terminate all VMs, billing their lifetimes.
    pub fn terminate_all(&self) {
        for vm in &self.vms {
            vm.terminate();
        }
    }

    /// Invoke a function on the head node without occupying a worker slot
    /// (the coordinator endpoint: it must never deadlock the slot pool it
    /// schedules workers onto).
    // simlint: allow(CONS002): the shim has no per-invocation billing by design; its VMs bill by lifetime through the ec2 meter.
    pub async fn invoke_unqueued(
        self: &Rc<Self>,
        name: &str,
        payload: String,
    ) -> Result<InvokeResult, FaasError> {
        let (config, handler) = {
            let fns = self.functions.borrow();
            let reg = fns
                .get(name)
                .ok_or_else(|| FaasError::UnknownFunction(name.to_string()))?;
            (reg.0.clone(), Rc::clone(&reg.1))
        };
        let vm = Rc::clone(&self.vms[0]);
        let started = self.ctx.now();
        let env = ExecEnv {
            ctx: self.ctx.clone(),
            nic: Rc::clone(&vm.nic),
            cold_start: false,
            vcpus: self.vcpus_per_worker as f64,
            memory_mib: config.memory_mib,
            instance_id: vm.id,
        };
        let result = handler(env, payload).await;
        let duration = self.ctx.now().duration_since(started);
        match result {
            Ok(output) => Ok(InvokeResult {
                output,
                duration,
                cold_start: false,
                sandbox_id: vm.id,
            }),
            Err(e) => Err(FaasError::HandlerFailed(e)),
        }
    }

    /// Invoke a function: queue for a slot, run on its VM. No coldstarts.
    // simlint: allow(CONS002): the shim has no per-invocation billing by design; its VMs bill by lifetime through the ec2 meter.
    pub async fn invoke(
        self: &Rc<Self>,
        name: &str,
        payload: String,
    ) -> Result<InvokeResult, FaasError> {
        let (config, handler) = {
            let fns = self.functions.borrow();
            let reg = fns
                .get(name)
                .ok_or_else(|| FaasError::UnknownFunction(name.to_string()))?;
            (reg.0.clone(), Rc::clone(&reg.1))
        };
        // Queue for a slot — "it queues and distributes the fragments
        // across the available worker slots".
        let _guard = self.slots.acquire().await;
        let vm_idx = self
            .free_slots
            .borrow_mut()
            .pop()
            .expect("slot semaphore and free list in sync");
        let vm = Rc::clone(&self.vms[vm_idx]);
        let started = self.ctx.now();
        let env = ExecEnv {
            ctx: self.ctx.clone(),
            nic: Rc::clone(&vm.nic),
            cold_start: false,
            vcpus: self.vcpus_per_worker as f64,
            memory_mib: config.memory_mib,
            instance_id: vm.id,
        };
        let result = handler(env, payload).await;
        self.free_slots.borrow_mut().push(vm_idx);
        let duration = self.ctx.now().duration_since(started);
        match result {
            Ok(output) => Ok(InvokeResult {
                output,
                duration,
                cold_start: false,
                sandbox_id: vm.id,
            }),
            Err(e) => Err(FaasError::HandlerFailed(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ec2::{Ec2Fleet, LaunchConfig};
    use crate::faas::handler;
    use skyrise_pricing::shared_meter;
    use skyrise_sim::{join_all, Sim, SimDuration};

    async fn cluster(ctx: &SimCtx, n: usize) -> Rc<ShimCluster> {
        let meter = shared_meter();
        let fleet = Ec2Fleet::new(ctx, &meter);
        let vms = fleet
            .launch_many(&LaunchConfig::on_demand("c6g.xlarge"), n)
            .await;
        ShimCluster::new(ctx, vms, 4)
    }

    #[test]
    fn invoke_runs_without_coldstart() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let cluster = cluster(&ctx, 2).await;
            cluster.register(
                FunctionConfig::worker("f"),
                handler(|env: ExecEnv, p: String| async move {
                    env.ctx.sleep(SimDuration::from_millis(10)).await;
                    Ok(p)
                }),
            );
            let t0 = ctx.now();
            let r = cluster.invoke("f", "hi".into()).await.unwrap();
            (r, (ctx.now() - t0).as_secs_f64())
        });
        sim.run();
        let (r, elapsed) = h.try_take().unwrap();
        assert!(!r.cold_start);
        assert_eq!(r.output, "hi");
        assert!(elapsed < 0.02, "no startup overhead: {elapsed}");
    }

    #[test]
    fn slots_queue_excess_invocations() {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            // 2 x c6g.xlarge at 4 vCPUs/worker = 2 slots.
            let cluster = cluster(&ctx, 2).await;
            assert_eq!(cluster.total_slots(), 2);
            cluster.register(
                FunctionConfig::worker("f"),
                handler(|env: ExecEnv, p: String| async move {
                    env.ctx.sleep(SimDuration::from_millis(100)).await;
                    Ok(p)
                }),
            );
            let t0 = ctx.now();
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let c = Rc::clone(&cluster);
                    ctx.spawn(async move { c.invoke("f", String::new()).await.unwrap() })
                })
                .collect();
            join_all(handles).await;
            (ctx.now() - t0).as_secs_f64()
        });
        sim.run();
        let elapsed = h.try_take().unwrap();
        // 6 tasks, 2 slots, 100 ms each => 3 waves = ~300 ms.
        assert!((elapsed - 0.3).abs() < 0.02, "elapsed {elapsed}");
    }

    #[test]
    fn bigger_vms_contribute_more_slots() {
        let mut sim = Sim::new(3);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let meter = shared_meter();
            let fleet = Ec2Fleet::new(&ctx, &meter);
            let vms = fleet
                .launch_many(&LaunchConfig::on_demand("c6g.4xlarge"), 3)
                .await;
            let cluster = ShimCluster::new(&ctx, vms, 4);
            cluster.total_slots()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 12); // 16 vCPUs / 4 per worker x 3
    }

    #[test]
    fn cluster_hourly_price_sums_vms() {
        let mut sim = Sim::new(4);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let cluster = cluster(&ctx, 284).await;
            cluster.usd_per_hour()
        });
        sim.run();
        // The paper's Q12 cluster: 284 x c6g.xlarge = $38.62/h.
        let usd = h.try_take().unwrap();
        assert!((usd - 284.0 * 0.136).abs() < 1e-9);
    }
}
