//! Region profiles driving the variability analysis (paper Sec. 4.6,
//! Table 5).
//!
//! The paper deploys its query suite in us-east-1, eu-west-1 and
//! ap-northeast-1 and reports the median-ratio (MR) to us-east-1 and the
//! coefficient of variation (CoV) within each region, for cold (15-minute
//! gaps over a workday) and warm (back-to-back) runs. Two observations
//! drive the model:
//!
//! * "In the EU, the startup of large function clusters takes
//!   significantly longer, likely due to contention within the region" —
//!   a lower sandbox-scaling rate and higher coldstart latency.
//! * "the cold experiment show[s] yet higher variance than the warm one"
//!   and "more frequent usage leads to pre-provisioning of resources and
//!   more robustness" — coldstart latency carries the variance, amplified
//!   by a diurnal load factor.

use serde::{Deserialize, Serialize};
use skyrise_sim::{SimDuration, SimRng, SimTime};

/// A cloud region's contention characteristics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// AWS region name.
    pub name: &'static str,
    /// Median sandbox coldstart latency (seconds), before binary download.
    pub coldstart_base: f64,
    /// Lognormal sigma of coldstart latency. The dominant CoV source for
    /// cold runs.
    pub coldstart_sigma: f64,
    /// Sandbox-scaling rate multiplier (1.0 = the documented 500/min).
    pub scaling_rate_factor: f64,
    /// Relative amplitude of the diurnal load factor applied to coldstart
    /// latency (0.0 = flat).
    pub diurnal_amplitude: f64,
    /// Warm-invocation latency jitter sigma (small).
    pub warm_sigma: f64,
}

impl Region {
    /// us-east-1: fastest scaling, but the busiest region — high local
    /// (especially cold) variability.
    pub fn us_east_1() -> Self {
        Region {
            name: "us-east-1",
            coldstart_base: 0.125,
            coldstart_sigma: 0.55,
            scaling_rate_factor: 1.0,
            diurnal_amplitude: 0.35,
            warm_sigma: 0.06,
        }
    }

    /// eu-west-1: contended function scaling — cluster startup is ~50%
    /// slower, but individual latencies are comparatively steady.
    pub fn eu_west_1() -> Self {
        Region {
            name: "eu-west-1",
            coldstart_base: 0.16,
            coldstart_sigma: 0.12,
            scaling_rate_factor: 0.12,
            diurnal_amplitude: 0.05,
            warm_sigma: 0.10,
        }
    }

    /// ap-northeast-1: slightly faster than us-east-1 at the median, with
    /// moderate variability.
    pub fn ap_northeast_1() -> Self {
        Region {
            name: "ap-northeast-1",
            coldstart_base: 0.115,
            coldstart_sigma: 0.22,
            scaling_rate_factor: 0.95,
            diurnal_amplitude: 0.12,
            warm_sigma: 0.07,
        }
    }

    /// The three regions of Table 5 in paper order.
    pub fn table5() -> [Region; 3] {
        [
            Region::us_east_1(),
            Region::eu_west_1(),
            Region::ap_northeast_1(),
        ]
    }

    /// Diurnal load factor at a simulation instant (>= 1 - amplitude,
    /// peaking mid-workday at 1 + amplitude).
    pub fn diurnal_factor(&self, now: SimTime) -> f64 {
        let day = 86_400.0;
        let phase = (now.as_secs_f64() % day) / day * std::f64::consts::TAU;
        1.0 + self.diurnal_amplitude * phase.sin()
    }

    /// Sample a coldstart latency (excluding binary download) at `now`.
    pub fn sample_coldstart(&self, rng: &mut SimRng, now: SimTime) -> SimDuration {
        let base = rng.gen_lognormal(self.coldstart_base.ln(), self.coldstart_sigma);
        SimDuration::from_secs_f64(base * self.diurnal_factor(now))
    }

    /// Sample a warmstart latency.
    pub fn sample_warmstart(&self, rng: &mut SimRng) -> SimDuration {
        let ms = rng.gen_lognormal((0.004f64).ln(), self.warm_sigma);
        SimDuration::from_secs_f64(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_factor_oscillates_around_one() {
        let r = Region::us_east_1();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for h in 0..24 {
            let f = r.diurnal_factor(SimTime::from_nanos(h * 3_600 * 1_000_000_000));
            min = min.min(f);
            max = max.max(f);
        }
        assert!(min < 0.7 && min > 0.6);
        assert!(max > 1.3 && max < 1.4);
    }

    #[test]
    fn eu_scaling_is_substantially_slower() {
        assert!(Region::eu_west_1().scaling_rate_factor < 0.5);
        assert!((Region::us_east_1().scaling_rate_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cold_coldstarts_vary_more_in_us() {
        let us = Region::us_east_1();
        let eu = Region::eu_west_1();
        let mut rng = SimRng::new(5);
        let sample = |r: &Region, rng: &mut SimRng| -> Vec<f64> {
            (0..2000)
                .map(|i| {
                    r.sample_coldstart(rng, SimTime::from_nanos(i * 60_000_000_000))
                        .as_secs_f64()
                })
                .collect()
        };
        let cov = |xs: &[f64]| skyrise_sim::metrics::summary::cov_percent(xs);
        let us_cov = cov(&sample(&us, &mut rng));
        let eu_cov = cov(&sample(&eu, &mut rng));
        assert!(us_cov > 2.0 * eu_cov, "us {us_cov} vs eu {eu_cov}");
    }

    #[test]
    fn warmstarts_are_single_digit_milliseconds() {
        let r = Region::us_east_1();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            let w = r.sample_warmstart(&mut rng).as_secs_f64();
            assert!(w > 0.001 && w < 0.01, "{w}");
        }
    }
}
