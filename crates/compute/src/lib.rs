//! # skyrise-compute — simulated compute services
//!
//! * [`faas::LambdaPlatform`] — the Lambda control plane: admission,
//!   burst scaling, coldstarts, warm pools, sandbox NICs, GB-second
//!   billing.
//! * [`ec2::Ec2Fleet`] — VM launches with catalog-driven network
//!   provisioning and lifetime billing.
//! * [`shim::ShimCluster`] — the paper's shim layer running the same
//!   function handlers on provisioned VMs.
//! * [`region::Region`] — per-region contention profiles for the
//!   variability analysis.
//!
//! [`ComputePlatform`] unifies FaaS and IaaS deployment behind one
//! `invoke` call, which is exactly how the paper's query engine swaps
//! between execution modes (Fig. 4).

#![warn(missing_docs)]

pub mod ec2;
pub mod faas;
pub mod region;
pub mod shim;

pub use ec2::{nic_for, Ec2Fleet, LaunchConfig, Vm};
pub use faas::{
    handler, ExecEnv, FaasError, FunctionConfig, Handler, InvokeResult, LambdaPlatform,
    LocalBoxFuture, MAX_PAYLOAD,
};
pub use region::Region;
pub use shim::ShimCluster;

use std::rc::Rc;

/// A deployment target for function handlers: serverless or server-based.
#[derive(Clone)]
pub enum ComputePlatform {
    /// AWS Lambda (FaaS execution mode).
    Faas(Rc<LambdaPlatform>),
    /// EC2 VM cluster behind the shim layer (IaaS execution mode).
    Shim(Rc<ShimCluster>),
}

impl ComputePlatform {
    /// Register a function on whichever platform this is.
    pub fn register(&self, config: FunctionConfig, handler: Handler) {
        match self {
            ComputePlatform::Faas(p) => p.register(config, handler),
            ComputePlatform::Shim(c) => c.register(config, handler),
        }
    }

    /// Invoke a function by name.
    pub async fn invoke(&self, name: &str, payload: String) -> Result<InvokeResult, FaasError> {
        match self {
            ComputePlatform::Faas(p) => p.invoke(name, payload).await,
            ComputePlatform::Shim(c) => c.invoke(name, payload).await,
        }
    }

    /// True for the serverless deployment.
    pub fn is_faas(&self) -> bool {
        matches!(self, ComputePlatform::Faas(_))
    }

    /// The usage meter behind this platform, when it exposes one (FaaS
    /// bills through the platform; the shim's VMs are billed at launch).
    pub fn meter(&self) -> Option<skyrise_pricing::SharedMeter> {
        match self {
            ComputePlatform::Faas(p) => Some(p.meter()),
            ComputePlatform::Shim(_) => None,
        }
    }

    /// Display name of the execution mode.
    pub fn mode(&self) -> &'static str {
        match self {
            ComputePlatform::Faas(_) => "FaaS",
            ComputePlatform::Shim(_) => "IaaS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2::{Ec2Fleet, LaunchConfig};
    use skyrise_pricing::shared_meter;
    use skyrise_sim::{Sim, SimDuration};

    #[test]
    fn platform_enum_dispatches_both_modes() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let meter = shared_meter();
            let body = handler(|env: ExecEnv, p: String| async move {
                env.ctx.sleep(SimDuration::from_millis(5)).await;
                Ok(format!(
                    "{}:{}",
                    if env.cold_start { "cold" } else { "warm" },
                    p
                ))
            });

            let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            let faas = ComputePlatform::Faas(lambda);
            faas.register(FunctionConfig::worker("f"), Rc::clone(&body));
            let faas_out = faas.invoke("f", "x".into()).await.unwrap().output;

            let fleet = Ec2Fleet::new(&ctx, &meter);
            let vms = fleet
                .launch_many(&LaunchConfig::on_demand("c6g.xlarge"), 1)
                .await;
            let shim = ComputePlatform::Shim(ShimCluster::new(&ctx, vms, 4));
            shim.register(FunctionConfig::worker("f"), body);
            let shim_out = shim.invoke("f", "x".into()).await.unwrap().output;

            (faas_out, shim_out, faas.mode(), shim.mode())
        });
        sim.run();
        let (faas_out, shim_out, m1, m2) = h.try_take().unwrap();
        assert_eq!(faas_out, "cold:x");
        assert_eq!(shim_out, "warm:x");
        assert_eq!((m1, m2), ("FaaS", "IaaS"));
    }
}
