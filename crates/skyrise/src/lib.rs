//! # Skyrise — an evaluation platform for serverless data processing
//!
//! A Rust reproduction of *"An Empirical Evaluation of Serverless Cloud
//! Infrastructure for Large-Scale Data Processing"* (EDBT 2025): a
//! deterministic simulation of AWS serverless infrastructure (Lambda, EC2,
//! S3 Standard/Express, DynamoDB, EFS), a serverless query engine running
//! on top of it, a microbenchmark suite, and the benchmark harness that
//! regenerates every table and figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use skyrise::prelude::*;
//!
//! let mut sim = Sim::new(42);
//! let ctx = sim.ctx();
//! let h = sim.spawn(async move {
//!     let meter = shared_meter();
//!     // Serverless storage + compute.
//!     let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
//!     let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
//!     // Load a small TPC-H dataset.
//!     let tables = skyrise::data::tpch::generate(0.01, 7);
//!     skyrise::engine::load_dataset(
//!         &storage,
//!         &DatasetLayout {
//!             name: "h_lineitem".into(),
//!             partitions: 8,
//!             target_partition_logical_bytes: None,
//!             rows_per_group: 4096,
//!         },
//!         &tables.lineitem,
//!     )
//!     .unwrap();
//!     // Deploy the engine and run TPC-H Q6.
//!     let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
//!     let response = engine
//!         .run_default(&skyrise::engine::queries::q6())
//!         .await
//!         .unwrap();
//!     let revenue = response.rows.unwrap()[0][0].as_f64();
//!     let usd = meter.borrow().report().total_usd();
//!     (revenue, usd)
//! });
//! sim.run();
//! let (revenue, usd) = h.try_take().unwrap();
//! assert!(revenue > 0.0 && usd > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `skyrise-sim` | virtual-time async kernel, RNG, metrics |
//! | [`net`] | `skyrise-net` | token buckets, NICs, fabric, transfers |
//! | [`pricing`] | `skyrise-pricing` | price catalog, usage meter, break-evens |
//! | [`storage`] | `skyrise-storage` | S3 / DynamoDB / EFS simulations |
//! | [`compute`] | `skyrise-compute` | Lambda platform, EC2 fleet, shim |
//! | [`data`] | `skyrise-data` | columnar batches, SPF format, TPC generators |
//! | [`engine`] | `skyrise-engine` | plans, operators, coordinator/workers |
//! | [`micro`] | `skyrise-micro` | microbenchmarks + experiment driver |

pub use skyrise_compute as compute;
pub use skyrise_data as data;
pub use skyrise_engine as engine;
pub use skyrise_micro as micro;
pub use skyrise_net as net;
pub use skyrise_pricing as pricing;
pub use skyrise_sim as sim;
pub use skyrise_storage as storage;

/// The names most experiments need, in one import.
pub mod prelude {
    pub use skyrise_compute::{
        ComputePlatform, Ec2Fleet, ExecEnv, FunctionConfig, LambdaPlatform, LaunchConfig, Region,
        ShimCluster,
    };
    pub use skyrise_data::{Batch, Column, DataType, Field, Schema, Value};
    pub use skyrise_engine::{
        load_dataset, DatasetLayout, PhysicalPlan, QueryConfig, QueryResponse, Skyrise,
        SkyriseConfig,
    };
    pub use skyrise_net::{Fabric, Nic, RateLimiter, SharedNic, TransferOpts};
    pub use skyrise_pricing::{shared_meter, StorageService, UsageMeter};
    pub use skyrise_sim::{join_all, Sim, SimCtx, SimDuration, SimTime, GIB, KIB, MIB};
    pub use skyrise_storage::{
        Blob, DynamoTable, EfsFilesystem, RequestOpts, RetryingClient, S3Bucket, S3Class, S3Config,
        Storage,
    };
}
