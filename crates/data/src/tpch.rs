//! Deterministic TPC-H data generation for the columns the paper's query
//! suite (Q1, Q6, Q12) touches.
//!
//! Follows the TPC-H specification's distributions for the generated
//! columns: LINEITEM has SF x 6M rows spread over SF x 1.5M orders (1–7
//! lines each), dates span 1992-01-01 .. 1998-12-31, discounts are 0–10%,
//! quantities 1–50, and RETURNFLAG/LINESTATUS derive from the dates
//! exactly as dbgen does. Generation is a pure function of `(sf, seed)`.

use crate::columnar::{date, Batch, Column, DataType, Field, Schema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// The seven TPC-H ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
/// The five TPC-H order priorities.
pub const ORDER_PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// LINEITEM schema (the query-relevant subset, in spec order).
pub fn lineitem_schema() -> Rc<Schema> {
    Schema::new(vec![
        Field::new("l_orderkey", DataType::Int64),
        Field::new("l_quantity", DataType::Float64),
        Field::new("l_extendedprice", DataType::Float64),
        Field::new("l_discount", DataType::Float64),
        Field::new("l_tax", DataType::Float64),
        Field::new("l_returnflag", DataType::Utf8),
        Field::new("l_linestatus", DataType::Utf8),
        Field::new("l_shipdate", DataType::Date),
        Field::new("l_commitdate", DataType::Date),
        Field::new("l_receiptdate", DataType::Date),
        Field::new("l_shipmode", DataType::Utf8),
    ])
}

/// ORDERS schema (query-relevant subset).
pub fn orders_schema() -> Rc<Schema> {
    Schema::new(vec![
        Field::new("o_orderkey", DataType::Int64),
        Field::new("o_custkey", DataType::Int64),
        Field::new("o_totalprice", DataType::Float64),
        Field::new("o_orderdate", DataType::Date),
        Field::new("o_orderpriority", DataType::Utf8),
    ])
}

/// Number of orders at a scale factor.
pub fn orders_rows(sf: f64) -> u64 {
    (sf * 1_500_000.0).round() as u64
}

/// Expected number of lineitem rows (~4 per order).
pub fn lineitem_rows_estimate(sf: f64) -> u64 {
    orders_rows(sf) * 4
}

/// Both tables generated together so their keys agree.
pub struct TpchTables {
    /// The ORDERS table.
    pub orders: Batch,
    /// The LINEITEM table.
    pub lineitem: Batch,
}

/// Generate ORDERS and LINEITEM at scale factor `sf` (a pure function of
/// `(sf, seed)`).
pub fn generate(sf: f64, seed: u64) -> TpchTables {
    let n_orders = orders_rows(sf) as usize;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7063_4854);

    let start_date = date::from_ymd(1992, 1, 1);
    // Latest order date leaves room for shipping intervals (spec: -151 days).
    let end_date = date::from_ymd(1998, 12, 31) - 151;
    let date_range = (end_date - start_date) as u64;
    let cutoff = date::from_ymd(1995, 6, 17);

    let mut o_orderkey = Vec::with_capacity(n_orders);
    let mut o_custkey = Vec::with_capacity(n_orders);
    let mut o_totalprice = Vec::with_capacity(n_orders);
    let mut o_orderdate = Vec::with_capacity(n_orders);
    let mut o_orderpriority = Vec::with_capacity(n_orders);

    let est_lines = n_orders * 4;
    let mut l_orderkey = Vec::with_capacity(est_lines);
    let mut l_quantity = Vec::with_capacity(est_lines);
    let mut l_extendedprice = Vec::with_capacity(est_lines);
    let mut l_discount = Vec::with_capacity(est_lines);
    let mut l_tax = Vec::with_capacity(est_lines);
    let mut l_returnflag: Vec<String> = Vec::with_capacity(est_lines);
    let mut l_linestatus: Vec<String> = Vec::with_capacity(est_lines);
    let mut l_shipdate = Vec::with_capacity(est_lines);
    let mut l_commitdate = Vec::with_capacity(est_lines);
    let mut l_receiptdate = Vec::with_capacity(est_lines);
    let mut l_shipmode: Vec<String> = Vec::with_capacity(est_lines);

    for i in 0..n_orders {
        // dbgen spreads order keys sparsely; dense keys serve the same
        // queries and join exactly as well.
        let orderkey = (i as i64) * 4 + 1;
        let orderdate = start_date + rng.gen_range(0..=date_range) as i64;
        let priority = ORDER_PRIORITIES[rng.gen_range(0..ORDER_PRIORITIES.len())];
        let lines = rng.gen_range(1..=7);
        let mut total = 0.0f64;

        for _ in 0..lines {
            let quantity = rng.gen_range(1..=50) as f64;
            // Simplified part price in the spec's 901.00..104,949.50 range.
            let part_price = rng.gen_range(901.00..105_000.00f64);
            let extendedprice = (quantity * part_price * 100.0).round() / 100.0;
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let shipdate = orderdate + rng.gen_range(1..=121i64);
            let commitdate = orderdate + rng.gen_range(30..=90i64);
            let receiptdate = shipdate + rng.gen_range(1..=30i64);
            let returnflag = if receiptdate <= cutoff {
                if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > cutoff { "O" } else { "F" };
            let shipmode = SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())];

            l_orderkey.push(orderkey);
            l_quantity.push(quantity);
            l_extendedprice.push(extendedprice);
            l_discount.push(discount);
            l_tax.push(tax);
            l_returnflag.push(returnflag.to_string());
            l_linestatus.push(linestatus.to_string());
            l_shipdate.push(shipdate);
            l_commitdate.push(commitdate);
            l_receiptdate.push(receiptdate);
            l_shipmode.push(shipmode.to_string());
            total += extendedprice * (1.0 - discount) * (1.0 + tax);
        }

        o_orderkey.push(orderkey);
        o_custkey.push(rng.gen_range(1..=(150_000f64 * sf.max(0.01)) as i64));
        o_totalprice.push((total * 100.0).round() / 100.0);
        o_orderdate.push(orderdate);
        o_orderpriority.push(priority.to_string());
    }

    TpchTables {
        orders: Batch::new(
            orders_schema(),
            vec![
                Column::Int64(o_orderkey),
                Column::Int64(o_custkey),
                Column::Float64(o_totalprice),
                Column::Int64(o_orderdate),
                Column::Utf8(o_orderpriority),
            ],
        ),
        lineitem: Batch::new(
            lineitem_schema(),
            vec![
                Column::Int64(l_orderkey),
                Column::Float64(l_quantity),
                Column::Float64(l_extendedprice),
                Column::Float64(l_discount),
                Column::Float64(l_tax),
                Column::Utf8(l_returnflag),
                Column::Utf8(l_linestatus),
                Column::Int64(l_shipdate),
                Column::Int64(l_commitdate),
                Column::Int64(l_receiptdate),
                Column::Utf8(l_shipmode),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_scale_factor() {
        let t = generate(0.01, 1);
        assert_eq!(t.orders.num_rows(), 15_000);
        let lines = t.lineitem.num_rows();
        assert!((45_000..=75_000).contains(&lines), "lines {lines}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.001, 42);
        let b = generate(0.001, 42);
        let c = generate(0.001, 43);
        assert_eq!(a.lineitem.columns, b.lineitem.columns);
        assert_ne!(a.lineitem.columns, c.lineitem.columns);
    }

    #[test]
    fn value_domains_match_spec() {
        let t = generate(0.005, 7);
        for &q in t.lineitem.column("l_quantity").as_f64() {
            assert!((1.0..=50.0).contains(&q));
        }
        for &d in t.lineitem.column("l_discount").as_f64() {
            assert!((0.0..=0.10001).contains(&d));
        }
        for &t_ in t.lineitem.column("l_tax").as_f64() {
            assert!((0.0..=0.08001).contains(&t_));
        }
        let start = date::from_ymd(1992, 1, 1);
        let end = date::from_ymd(1999, 12, 31);
        for &d in t.lineitem.column("l_shipdate").as_i64() {
            assert!(d > start && d < end);
        }
        for m in t.lineitem.column("l_shipmode").as_str() {
            assert!(SHIP_MODES.contains(&m.as_str()));
        }
    }

    #[test]
    fn flags_derive_from_dates() {
        let t = generate(0.005, 9);
        let cutoff = date::from_ymd(1995, 6, 17);
        let flags = t.lineitem.column("l_returnflag").as_str();
        let status = t.lineitem.column("l_linestatus").as_str();
        let ship = t.lineitem.column("l_shipdate").as_i64();
        let receipt = t.lineitem.column("l_receiptdate").as_i64();
        for i in 0..t.lineitem.num_rows() {
            if receipt[i] <= cutoff {
                assert!(flags[i] == "R" || flags[i] == "A");
            } else {
                assert_eq!(flags[i], "N");
            }
            assert_eq!(status[i], if ship[i] > cutoff { "O" } else { "F" });
        }
    }

    #[test]
    fn every_lineitem_joins_to_an_order() {
        let t = generate(0.002, 11);
        let orders: std::collections::HashSet<i64> = t
            .orders
            .column("o_orderkey")
            .as_i64()
            .iter()
            .copied()
            .collect();
        for &k in t.lineitem.column("l_orderkey").as_i64() {
            assert!(orders.contains(&k));
        }
    }

    #[test]
    fn q6_style_selectivity_is_nontrivial() {
        // The Q6 predicate should select a small but non-empty fraction.
        let t = generate(0.01, 13);
        let ship = t.lineitem.column("l_shipdate").as_i64();
        let disc = t.lineitem.column("l_discount").as_f64();
        let qty = t.lineitem.column("l_quantity").as_f64();
        let lo = date::from_ymd(1994, 1, 1);
        let hi = date::from_ymd(1995, 1, 1);
        let hits = (0..t.lineitem.num_rows())
            .filter(|&i| {
                ship[i] >= lo && ship[i] < hi && disc[i] >= 0.05 && disc[i] <= 0.07 && qty[i] < 24.0
            })
            .count();
        let frac = hits as f64 / t.lineitem.num_rows() as f64;
        assert!(frac > 0.005 && frac < 0.08, "selectivity {frac}");
    }
}
