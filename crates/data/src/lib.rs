//! # skyrise-data — columnar data, the SPF file format, TPC generators
//!
//! * [`columnar`] — schemas, typed columns, vectorised [`Batch`]es, civil
//!   dates.
//! * [`keys`] — normalized fixed-width composite keys ([`KeyBuffer`])
//!   backing the engine's grouping/join/sort kernels.
//! * [`spf`] — the Parquet-like columnar file format with row groups,
//!   zone maps, and range-read-friendly footers.
//! * [`tpch`] / [`tpcxbb`] — deterministic generators for the tables the
//!   paper's query suite (TPC-H Q1/Q6/Q12, TPCx-BB Q3) touches.

#![warn(missing_docs)]

pub mod columnar;
pub mod keys;
pub mod spf;
pub mod tpch;
pub mod tpcxbb;

pub use columnar::{date, Batch, Column, DataType, Field, Schema, Value};
pub use keys::{bits_to_f64, total_order_bits, DictCache, KeyBuffer, SelSpec};
