//! Normalized fixed-width keys for the vectorised data plane.
//!
//! Grouping, joining, sorting, and shuffle partitioning all reduce to
//! comparing composite keys drawn from a batch's columns. The engine's
//! original path materialised one `Vec<ScalarKey>` — heap vector plus
//! cloned values, including full `String` clones — per row per key
//! column. A [`KeyBuffer`] instead encodes the key columns
//! column-at-a-time into one contiguous `u64` buffer:
//!
//! * `Int64` (and `Date`) → `(x as u64) ^ (1 << 63)`: flipping the sign
//!   bit makes unsigned order equal signed order ([`norm_i64`]).
//! * `Bool` → `0` / `1`.
//! * `Float64` → [`total_order_bits`]: unsigned order equals
//!   `f64::total_cmp` order (exact-bits equality, NaN included).
//! * `Utf8` → the value's rank in a sorted, deduplicated dictionary
//!   built over the rows handed to the encoder (one blocking operator
//!   invocation). Rank order is string order by construction.
//!
//! Within each column the `u64` order therefore equals the order of the
//! engine's legacy `ScalarKey` wrappers, and comparing rows word-by-word
//! equals comparing `Vec<ScalarKey>` lexicographically — so kernels
//! rebuilt on `KeyBuffer` produce byte-identical grouped/sorted output.
//! (Columns are homogeneously typed, so `ScalarKey`'s cross-variant enum
//! order never arises.)
//!
//! [`KeyBuffer::encode_selected`] encodes *under a selection vector*
//! ([`SelSpec`]): only the selected rows of each batch are encoded, in
//! stream order, so filtering consumers never materialise a filtered
//! batch just to build keys. String dictionaries may be computed over
//! the full column (a superset of the selected rows); ranks shift but
//! their relative order — the only thing consumers observe — does not.
//!
//! Dictionary ranks are only meaningful relative to the buffer that
//! built them: encodings from different `KeyBuffer`s must never be
//! compared. Cross-fragment agreement (shuffle partitioning) uses the
//! batched [`mix64`] hash over the same normalized words instead — see
//! [`fold_hash_words`] and friends, and the engine's `partition_batch`.

use crate::columnar::{Batch, Column, Value};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Map an `f64` to bits whose unsigned order equals `total_cmp` order.
#[inline]
pub fn total_order_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`total_order_bits`].
#[inline]
pub fn bits_to_f64(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

const SIGN_FLIP: u64 = 1 << 63;

/// Sign-flipped two's complement: unsigned order equals signed order.
#[inline]
pub fn norm_i64(x: i64) -> u64 {
    x as u64 ^ SIGN_FLIP
}

// ---------------------------------------------------------------------------
// batched shuffle-key hashing
// ---------------------------------------------------------------------------
//
// Shuffle partitioning needs a hash that writer and reader fragments (and
// the row-at-a-time `ScalarKey` oracle) agree on bit-for-bit. The batched
// scheme hashes the *normalized* fixed-width word of each key value:
//
//   column hash  kh = mix64(word ^ TAG_<type>)
//   row fold      h = h * 31 + kh          (over the key columns in order)
//
// `Utf8` has no fixed-width normalization that agrees across fragments
// (dictionary ranks are buffer-local), so strings hash their bytes with
// the workspace FNV-1a first and feed the digest through the same
// finalizer: kh = mix64(fnv1a64(bytes) ^ TAG_UTF8). FNV-1a itself stays
// the sanitizer-digest hash; it is no longer on the per-row numeric path.

/// Type tag folded into [`mix64`] for `Int64` keys.
pub const HASH_TAG_I64: u64 = 0x9E37_79B9_7F4A_7C15;
/// Type tag folded into [`mix64`] for `Float64` keys.
pub const HASH_TAG_F64: u64 = 0xC2B2_AE3D_27D4_EB4F;
/// Type tag folded into [`mix64`] for `Bool` keys.
pub const HASH_TAG_BOOL: u64 = 0x1656_67B1_9E37_79F9;
/// Type tag folded into [`mix64`] for `Utf8` keys (applied to the FNV-1a
/// digest of the string bytes).
pub const HASH_TAG_UTF8: u64 = 0x27D4_EB2F_1656_67C5;

/// SplitMix64 finalizer: a cheap, statistically strong bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Scalar hash of one `Int64` key (the oracle-side mirror of
/// [`fold_hash_i64`]'s per-lane step).
#[inline]
pub fn hash_key_i64(x: i64) -> u64 {
    mix64(norm_i64(x) ^ HASH_TAG_I64)
}

/// Scalar hash of one `Float64` key, given its [`total_order_bits`].
#[inline]
pub fn hash_key_f64_bits(bits: u64) -> u64 {
    mix64(bits ^ HASH_TAG_F64)
}

/// Scalar hash of one `Bool` key.
#[inline]
pub fn hash_key_bool(b: bool) -> u64 {
    mix64(b as u64 ^ HASH_TAG_BOOL)
}

/// Scalar hash of one `Utf8` key, given the FNV-1a digest of its bytes
/// (the digest function lives in `skyrise-sim`; callers pass it in).
#[inline]
pub fn hash_key_utf8(fnv_digest: u64) -> u64 {
    mix64(fnv_digest ^ HASH_TAG_UTF8)
}

macro_rules! unrolled_fold {
    ($acc:ident, $vals:ident, $kh:expr) => {{
        debug_assert_eq!($acc.len(), $vals.len());
        let mut a = $acc.chunks_exact_mut(4);
        let mut v = $vals.chunks_exact(4);
        // Four independent lanes per iteration: each lane's multiply and
        // mix can issue in parallel, unlike the FNV byte chain.
        for (h, x) in (&mut a).zip(&mut v) {
            h[0] = h[0].wrapping_mul(31).wrapping_add($kh(x[0]));
            h[1] = h[1].wrapping_mul(31).wrapping_add($kh(x[1]));
            h[2] = h[2].wrapping_mul(31).wrapping_add($kh(x[2]));
            h[3] = h[3].wrapping_mul(31).wrapping_add($kh(x[3]));
        }
        for (h, &x) in a.into_remainder().iter_mut().zip(v.remainder()) {
            *h = h.wrapping_mul(31).wrapping_add($kh(x));
        }
    }};
}

/// Fold a column of pre-normalized words into per-row hash accumulators
/// (`acc[r] = acc[r] * 31 + mix64(words[r] ^ tag)`), four lanes at a time.
pub fn fold_hash_words(acc: &mut [u64], words: &[u64], tag: u64) {
    unrolled_fold!(acc, words, |w: u64| mix64(w ^ tag));
}

/// Fold an `Int64` key column into per-row hash accumulators.
pub fn fold_hash_i64(acc: &mut [u64], vals: &[i64]) {
    unrolled_fold!(acc, vals, |x: i64| hash_key_i64(x));
}

/// Fold a `Float64` key column into per-row hash accumulators.
pub fn fold_hash_f64(acc: &mut [u64], vals: &[f64]) {
    unrolled_fold!(acc, vals, |x: f64| hash_key_f64_bits(total_order_bits(x)));
}

/// Fold a `Bool` key column into per-row hash accumulators (both possible
/// hashes are precomputed; the loop is a select).
pub fn fold_hash_bool(acc: &mut [u64], vals: &[bool]) {
    let hf = hash_key_bool(false);
    let ht = hash_key_bool(true);
    unrolled_fold!(acc, vals, |b: bool| if b { ht } else { hf });
}

// ---------------------------------------------------------------------------
// selections
// ---------------------------------------------------------------------------

/// A view of which rows of a batch are live, in order. The engine's
/// selection vectors lower to this when handing batches to the encoder.
#[derive(Debug, Clone, Copy)]
pub enum SelSpec<'a> {
    /// Every row.
    All,
    /// The first `n` rows.
    Prefix(usize),
    /// Exactly these row indices, in order.
    Rows(&'a [u32]),
}

impl SelSpec<'_> {
    /// Number of selected rows of a batch with `rows` rows.
    #[inline]
    pub fn count(&self, rows: usize) -> usize {
        match self {
            SelSpec::All => rows,
            SelSpec::Prefix(n) => (*n).min(rows),
            SelSpec::Rows(r) => r.len(),
        }
    }

    /// Iterate the selected row indices of a batch with `rows` rows.
    pub fn iter(&self, rows: usize) -> SelIter<'_> {
        match self {
            SelSpec::All => SelIter::Range(0..rows),
            SelSpec::Prefix(n) => SelIter::Range(0..(*n).min(rows)),
            SelSpec::Rows(r) => SelIter::Rows(r.iter()),
        }
    }
}

/// Iterator over a [`SelSpec`]'s selected rows.
pub enum SelIter<'a> {
    /// Contiguous range (All / Prefix).
    Range(std::ops::Range<usize>),
    /// Explicit row list.
    Rows(std::slice::Iter<'a, u32>),
}

impl Iterator for SelIter<'_> {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            SelIter::Range(r) => r.next(),
            SelIter::Rows(it) => it.next().map(|&x| x as usize),
        }
    }
}

// ---------------------------------------------------------------------------
// dictionary cache
// ---------------------------------------------------------------------------

/// Per-invocation cache of sorted-distinct string dictionaries, keyed by
/// column identity, so the same `Utf8` column is scanned and sorted once
/// per worker invocation even when several operators encode it.
///
/// Identity is the column's `(data pointer, length)`. That is only sound
/// while the allocation is guaranteed alive, so the cache stores entries
/// exclusively for columns of batches that were [`pin`](DictCache::pin)ned
/// first — pinning clones the batch's `Rc`, which keeps the allocation
/// (and therefore the pointer identity) valid for the cache's lifetime.
/// Unpinned columns are computed but never cached.
#[derive(Debug, Default)]
pub struct DictCache {
    pins: RefCell<Vec<Rc<Batch>>>,
    pinned_cols: RefCell<BTreeSet<(usize, usize)>>,
    entries: RefCell<BTreeMap<(usize, usize), Rc<Vec<String>>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl DictCache {
    /// An empty cache.
    pub fn new() -> DictCache {
        DictCache::default()
    }

    /// Pin a batch: its `Utf8` columns become cacheable by pointer
    /// identity for as long as the cache lives.
    pub fn pin(&self, batch: &Rc<Batch>) {
        let mut cols = self.pinned_cols.borrow_mut();
        let mut changed = false;
        for c in &batch.columns {
            if let Column::Utf8(v) = c {
                changed |= cols.insert(col_key(v));
            }
        }
        if changed {
            self.pins.borrow_mut().push(Rc::clone(batch));
        }
    }

    /// Sorted distinct values of `col`, cached when the column belongs to
    /// a pinned batch.
    pub fn distinct(&self, col: &[String]) -> Rc<Vec<String>> {
        let key = col_key(col);
        if let Some(d) = self.entries.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return Rc::clone(d);
        }
        self.misses.set(self.misses.get() + 1);
        let dict = Rc::new(sorted_distinct(col));
        if self.pinned_cols.borrow().contains(&key) {
            self.entries.borrow_mut().insert(key, Rc::clone(&dict));
        }
        dict
    }

    /// Seed the cache with a dictionary decoded straight from storage
    /// (an SPF `Utf8Dict` chunk whose entries are all referenced covers
    /// exactly the column's distinct set). Pins the batch, then installs
    /// the sorted dictionary under the column's identity so the first
    /// `distinct` call is a hit — no per-invocation re-sort.
    ///
    /// Debug builds verify the seed equals the column's sorted distinct
    /// set; a wrong seed would silently corrupt key normalization.
    pub fn seed(&self, batch: &Rc<Batch>, col: usize, dict: Rc<Vec<String>>) {
        let Column::Utf8(v) = &batch.columns[col] else {
            return;
        };
        debug_assert_eq!(*dict, sorted_distinct(v), "seed must be sorted distinct");
        self.pin(batch);
        self.entries.borrow_mut().insert(col_key(v), dict);
    }

    /// Cache hits so far (for tests and telemetry).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

#[inline]
fn col_key(col: &[String]) -> (usize, usize) {
    (col.as_ptr() as usize, col.len())
}

/// Sorted, deduplicated copy of a string column.
fn sorted_distinct(col: &[String]) -> Vec<String> {
    let mut refs: Vec<&str> = col.iter().map(String::as_str).collect();
    refs.sort_unstable();
    refs.dedup();
    refs.into_iter().map(str::to_string).collect()
}

// ---------------------------------------------------------------------------
// the key buffer
// ---------------------------------------------------------------------------

/// Per-key-column decode metadata.
#[derive(Debug, Clone)]
enum KeyEncoding {
    /// Sign-flipped two's complement (covers `Date`, stored as `Int64`).
    Int64,
    /// Total-order float bits.
    Float64,
    /// 0 / 1.
    Bool,
    /// Rank into a sorted distinct dictionary (shared with the cache).
    Utf8(Rc<Vec<String>>),
}

/// A contiguous, row-major buffer of normalized fixed-width keys: one
/// `u64` word per key column per row. See the module docs for the
/// encoding and its order-preservation contract.
#[derive(Debug, Clone)]
pub struct KeyBuffer {
    width: usize,
    rows: usize,
    words: Vec<u64>,
    encodings: Vec<KeyEncoding>,
}

impl KeyBuffer {
    /// Encode the given column indices of a run of batches (one blocking
    /// operator's input, concatenated row-major). String dictionaries
    /// span all batches so ranks are comparable across the whole run.
    ///
    /// Panics if a column index is out of range or batches disagree on a
    /// key column's type — callers resolve and type-check names first.
    pub fn encode(batches: &[&Batch], columns: &[usize]) -> KeyBuffer {
        let parts: Vec<(&Batch, SelSpec)> = batches.iter().map(|b| (*b, SelSpec::All)).collect();
        KeyBuffer::encode_selected(&parts, columns, None, Vec::new())
    }

    /// Encode only the selected rows of each batch (in stream order).
    /// `cache` reuses string dictionaries across operators; `reuse` is a
    /// recycled word buffer (pass `Vec::new()` when none is available).
    pub fn encode_selected(
        parts: &[(&Batch, SelSpec)],
        columns: &[usize],
        cache: Option<&DictCache>,
        reuse: Vec<u64>,
    ) -> KeyBuffer {
        let rows: usize = parts.iter().map(|(b, s)| s.count(b.num_rows())).sum();
        let width = columns.len();
        let mut words = reuse;
        words.clear();
        words.resize(rows * width, 0);
        let mut encodings = Vec::with_capacity(width);
        for (ci, &col) in columns.iter().enumerate() {
            let enc = encode_column(parts, col, ci, width, &mut words, cache);
            encodings.push(enc);
        }
        KeyBuffer {
            width,
            rows,
            words,
            encodings,
        }
    }

    /// Number of encoded rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of key columns (words per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The normalized word of key column `c` in row `r`.
    #[inline]
    pub fn word(&self, r: usize, c: usize) -> u64 {
        self.words[r * self.width + c]
    }

    /// The full normalized key of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.width..(r + 1) * self.width]
    }

    /// Row indices sorted by normalized key (ties keep row order, so the
    /// permutation is stable). Equal slices group equal composite keys.
    pub fn sort_indices(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.rows as u32).collect();
        idx.sort_by(|&a, &b| self.row(a as usize).cmp(self.row(b as usize)));
        idx
    }

    /// Decode key column `c` of row `r` back to a [`Value`].
    pub fn value(&self, r: usize, c: usize) -> Value {
        let w = self.word(r, c);
        match &self.encodings[c] {
            KeyEncoding::Int64 => Value::Int64((w ^ SIGN_FLIP) as i64),
            KeyEncoding::Float64 => Value::Float64(bits_to_f64(w)),
            KeyEncoding::Bool => Value::Bool(w != 0),
            KeyEncoding::Utf8(dict) => Value::Utf8(dict[w as usize].clone()),
        }
    }

    /// Encode a probe column against key column `c`'s encoding (join
    /// probes reuse the build side's dictionary). `None` marks a row
    /// that cannot match any build key: a string absent from the build
    /// dictionary, or a probe column whose type differs from the build
    /// key's (the legacy `ScalarKey` path treats cross-type keys as
    /// never equal).
    pub fn encode_probe(&self, c: usize, col: &Column) -> Vec<Option<u64>> {
        self.encode_probe_sel(c, col, SelSpec::All)
    }

    /// [`encode_probe`](Self::encode_probe) restricted to the selected
    /// rows; the result is parallel to the selection, not to the column.
    pub fn encode_probe_sel(&self, c: usize, col: &Column, sel: SelSpec) -> Vec<Option<u64>> {
        let n = col.len();
        let mut out = Vec::with_capacity(sel.count(n));
        match (&self.encodings[c], col) {
            (KeyEncoding::Int64, Column::Int64(v)) => {
                out.extend(sel.iter(n).map(|r| Some(norm_i64(v[r]))));
            }
            (KeyEncoding::Float64, Column::Float64(v)) => {
                out.extend(sel.iter(n).map(|r| Some(total_order_bits(v[r]))));
            }
            (KeyEncoding::Bool, Column::Bool(v)) => {
                out.extend(sel.iter(n).map(|r| Some(v[r] as u64)));
            }
            (KeyEncoding::Utf8(dict), Column::Utf8(v)) => {
                out.extend(
                    sel.iter(n)
                        .map(|r| dict.binary_search(&v[r]).ok().map(|rank| rank as u64)),
                );
            }
            _ => out.resize(sel.count(n), None),
        }
        out
    }

    /// Hand the word buffer back for recycling (arena reuse).
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }
}

/// Encode one key column across all selected rows into the interleaved
/// word buffer, returning its decode metadata.
fn encode_column(
    parts: &[(&Batch, SelSpec)],
    col: usize,
    ci: usize,
    width: usize,
    words: &mut [u64],
    cache: Option<&DictCache>,
) -> KeyEncoding {
    let mut base = 0usize;
    match parts.first().map(|(b, _)| &b.columns[col]) {
        None | Some(Column::Int64(_)) => {
            for (b, sel) in parts {
                let Column::Int64(v) = &b.columns[col] else {
                    panic!("key column {col} changed type across batches");
                };
                for (i, r) in sel.iter(v.len()).enumerate() {
                    words[(base + i) * width + ci] = norm_i64(v[r]);
                }
                base += sel.count(v.len());
            }
            KeyEncoding::Int64
        }
        Some(Column::Float64(_)) => {
            for (b, sel) in parts {
                let Column::Float64(v) = &b.columns[col] else {
                    panic!("key column {col} changed type across batches");
                };
                for (i, r) in sel.iter(v.len()).enumerate() {
                    words[(base + i) * width + ci] = total_order_bits(v[r]);
                }
                base += sel.count(v.len());
            }
            KeyEncoding::Float64
        }
        Some(Column::Bool(_)) => {
            for (b, sel) in parts {
                let Column::Bool(v) = &b.columns[col] else {
                    panic!("key column {col} changed type across batches");
                };
                for (i, r) in sel.iter(v.len()).enumerate() {
                    words[(base + i) * width + ci] = v[r] as u64;
                }
                base += sel.count(v.len());
            }
            KeyEncoding::Bool
        }
        Some(Column::Utf8(_)) => {
            // Sorted distinct dictionary per batch column (cache-reusable),
            // merged across the run. The merged dictionary may be a
            // superset of the selected rows' values; rank *order* — the
            // only observable — is unaffected.
            let mut dicts: Vec<Rc<Vec<String>>> = Vec::with_capacity(parts.len());
            for (b, _) in parts {
                let Column::Utf8(v) = &b.columns[col] else {
                    panic!("key column {col} changed type across batches");
                };
                dicts.push(match cache {
                    Some(c) => c.distinct(v),
                    None => Rc::new(sorted_distinct(v)),
                });
            }
            let dict: Rc<Vec<String>> = if dicts.len() == 1 {
                Rc::clone(&dicts[0])
            } else {
                let mut merged: Vec<&str> = dicts
                    .iter()
                    .flat_map(|d| d.iter().map(String::as_str))
                    .collect();
                merged.sort_unstable();
                merged.dedup();
                Rc::new(merged.into_iter().map(str::to_string).collect())
            };
            for (b, sel) in parts {
                let Column::Utf8(v) = &b.columns[col] else {
                    unreachable!("checked above");
                };
                for (i, r) in sel.iter(v.len()).enumerate() {
                    let rank = dict
                        .binary_search(&v[r])
                        .expect("dictionary covers all rows");
                    words[(base + i) * width + ci] = rank as u64;
                }
                base += sel.count(v.len());
            }
            KeyEncoding::Utf8(dict)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{Field, Schema};

    fn batch(cols: Vec<(&str, Column)>) -> Batch {
        let fields = cols
            .iter()
            .map(|(n, c)| Field::new(n, c.data_type()))
            .collect();
        Batch::new(
            Schema::new(fields),
            cols.into_iter().map(|(_, c)| c).collect(),
        )
    }

    #[test]
    fn float_bits_round_trip_and_order() {
        let xs = [
            f64::NEG_INFINITY,
            -1.25e300,
            -0.1,
            -0.0,
            0.0,
            3.5,
            f64::INFINITY,
            f64::NAN,
        ];
        for &x in &xs {
            assert_eq!(x.to_bits(), bits_to_f64(total_order_bits(x)).to_bits());
        }
        let mut bits: Vec<u64> = xs.iter().map(|&x| total_order_bits(x)).collect();
        let sorted = {
            let mut b = bits.clone();
            b.sort_unstable();
            b
        };
        bits.sort_by(|a, b| bits_to_f64(*a).total_cmp(&bits_to_f64(*b)));
        assert_eq!(bits, sorted);
    }

    #[test]
    fn int_keys_order_and_decode() {
        let b = batch(vec![(
            "k",
            Column::Int64(vec![3, -7, i64::MIN, i64::MAX, 0]),
        )]);
        let kb = KeyBuffer::encode(&[&b], &[0]);
        let order = kb.sort_indices();
        let sorted: Vec<i64> = order
            .iter()
            .map(|&r| match kb.value(r as usize, 0) {
                Value::Int64(x) => x,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sorted, vec![i64::MIN, -7, 0, 3, i64::MAX]);
    }

    #[test]
    fn string_dictionary_spans_batches() {
        let b1 = batch(vec![(
            "s",
            Column::Utf8(vec!["pear".into(), "apple".into()]),
        )]);
        let b2 = batch(vec![(
            "s",
            Column::Utf8(vec!["mango".into(), "apple".into()]),
        )]);
        let kb = KeyBuffer::encode(&[&b1, &b2], &[0]);
        assert_eq!(kb.rows(), 4);
        // Ranks: apple=0, mango=1, pear=2 — consistent across batches.
        assert_eq!(kb.word(0, 0), 2);
        assert_eq!(kb.word(1, 0), 0);
        assert_eq!(kb.word(2, 0), 1);
        assert_eq!(kb.word(3, 0), 0);
        assert_eq!(kb.value(2, 0), Value::Utf8("mango".into()));
    }

    #[test]
    fn composite_sort_is_stable_lexicographic() {
        let b = batch(vec![
            (
                "s",
                Column::Utf8(vec!["b".into(), "a".into(), "b".into(), "a".into()]),
            ),
            ("k", Column::Int64(vec![1, 2, 1, 2])),
        ]);
        let kb = KeyBuffer::encode(&[&b], &[0, 1]);
        // Equal composite keys keep row order: (a,2) rows 1,3 then (b,1) rows 0,2.
        assert_eq!(kb.sort_indices(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn probe_encoding_misses_and_type_mismatches() {
        let build = batch(vec![("s", Column::Utf8(vec!["x".into(), "z".into()]))]);
        let kb = KeyBuffer::encode(&[&build], &[0]);
        let probe = Column::Utf8(vec!["z".into(), "y".into(), "x".into()]);
        assert_eq!(kb.encode_probe(0, &probe), vec![Some(1), None, Some(0)]);
        // Cross-type probes never match (legacy ScalarKey semantics).
        let ints = Column::Int64(vec![0, 1]);
        assert_eq!(kb.encode_probe(0, &ints), vec![None, None]);
        // Selection-restricted probes are parallel to the selection.
        let sel = [2u32, 0u32];
        assert_eq!(
            kb.encode_probe_sel(0, &probe, SelSpec::Rows(&sel)),
            vec![Some(0), Some(1)]
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let kb = KeyBuffer::encode(&[], &[0, 1]);
        assert_eq!(kb.rows(), 0);
        assert!(kb.sort_indices().is_empty());
    }

    #[test]
    fn selected_encode_matches_materialised_encode() {
        let b = batch(vec![
            (
                "s",
                Column::Utf8(vec![
                    "d".into(),
                    "a".into(),
                    "c".into(),
                    "b".into(),
                    "a".into(),
                ]),
            ),
            ("k", Column::Int64(vec![5, 1, 4, 2, 1])),
            ("f", Column::Float64(vec![0.5, -0.0, f64::NAN, 2.0, -3.0])),
        ]);
        let sel = [1u32, 3, 4];
        let kb =
            KeyBuffer::encode_selected(&[(&b, SelSpec::Rows(&sel))], &[0, 1, 2], None, Vec::new());
        // Materialised reference: take the same rows, encode fully.
        let taken = b.take(&[1, 3, 4]);
        let want = KeyBuffer::encode(&[&taken], &[0, 1, 2]);
        assert_eq!(kb.rows(), want.rows());
        assert_eq!(kb.sort_indices(), want.sort_indices());
        for r in 0..kb.rows() {
            for c in 0..3 {
                assert_eq!(kb.value(r, c), want.value(r, c), "row {r} col {c}");
            }
        }
        // Prefix selections behave like slices.
        let kp = KeyBuffer::encode_selected(&[(&b, SelSpec::Prefix(2))], &[1], None, Vec::new());
        assert_eq!(kp.rows(), 2);
        assert_eq!(kp.value(0, 0), Value::Int64(5));
        assert_eq!(kp.value(1, 0), Value::Int64(1));
    }

    #[test]
    fn dict_cache_reuses_pinned_columns() {
        let b = Rc::new(batch(vec![(
            "s",
            Column::Utf8(vec!["b".into(), "a".into(), "b".into()]),
        )]));
        let cache = DictCache::new();
        cache.pin(&b);
        let parts: Vec<(&Batch, SelSpec)> = vec![(&b, SelSpec::All)];
        let k1 = KeyBuffer::encode_selected(&parts, &[0], Some(&cache), Vec::new());
        let k2 = KeyBuffer::encode_selected(&parts, &[0], Some(&cache), Vec::new());
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(k1.value(0, 0), k2.value(0, 0));
        // Unpinned columns are computed but never cached.
        let other = batch(vec![("s", Column::Utf8(vec!["z".into()]))]);
        let parts2: Vec<(&Batch, SelSpec)> = vec![(&other, SelSpec::All)];
        let _ = KeyBuffer::encode_selected(&parts2, &[0], Some(&cache), Vec::new());
        let _ = KeyBuffer::encode_selected(&parts2, &[0], Some(&cache), Vec::new());
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn dict_cache_seed_makes_first_lookup_a_hit() {
        let b = Rc::new(batch(vec![(
            "s",
            Column::Utf8(vec!["b".into(), "a".into(), "b".into()]),
        )]));
        let cache = DictCache::new();
        cache.seed(&b, 0, Rc::new(vec!["a".into(), "b".into()]));
        let parts: Vec<(&Batch, SelSpec)> = vec![(&b, SelSpec::All)];
        let k = KeyBuffer::encode_selected(&parts, &[0], Some(&cache), Vec::new());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 0);
        // Ranks come from the seeded dictionary: "b" > "a".
        assert!(k.value(0, 0) == Value::Utf8("b".into()));
        // Seeding a non-Utf8 column is a no-op, not a panic.
        let ints = Rc::new(batch(vec![("x", Column::Int64(vec![1, 2]))]));
        cache.seed(&ints, 0, Rc::new(vec![]));
    }

    #[test]
    fn batched_hash_matches_scalar_mirror() {
        let ints = [i64::MIN, -1, 0, 1, 42, i64::MAX, 7, -9, 13];
        let mut acc = vec![0u64; ints.len()];
        fold_hash_i64(&mut acc, &ints);
        for (h, &x) in acc.iter().zip(&ints) {
            assert_eq!(*h, hash_key_i64(x));
        }
        let floats = [0.0, -0.0, f64::NAN, 1.5, -2.5];
        let mut acc = vec![0u64; floats.len()];
        fold_hash_f64(&mut acc, &floats);
        for (h, &x) in acc.iter().zip(&floats) {
            assert_eq!(*h, hash_key_f64_bits(total_order_bits(x)));
        }
        let bools = [true, false, true];
        let mut acc = vec![0u64; bools.len()];
        fold_hash_bool(&mut acc, &bools);
        for (h, &b) in acc.iter().zip(&bools) {
            assert_eq!(*h, hash_key_bool(b));
        }
        // Folding a second column matches the scalar h*31 + kh recurrence.
        let mut acc = vec![0u64; ints.len()];
        fold_hash_i64(&mut acc, &ints);
        let before = acc.clone();
        fold_hash_i64(&mut acc, &ints);
        for ((h, prev), &x) in acc.iter().zip(&before).zip(&ints) {
            assert_eq!(*h, prev.wrapping_mul(31).wrapping_add(hash_key_i64(x)));
        }
    }

    #[test]
    fn mix64_scrambles_and_is_stable() {
        assert_eq!(mix64(0), 0);
        // Single-bit inputs must diverge in the low bits (the partition
        // bucket is `hash % n`).
        assert_ne!(mix64(1) & 0xFFFF, mix64(2) & 0xFFFF);
        assert_ne!(mix64(1) & 0xFFFF, mix64(1 << 63) & 0xFFFF);
    }
}
