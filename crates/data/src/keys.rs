//! Normalized fixed-width keys for the vectorised data plane.
//!
//! Grouping, joining, sorting, and shuffle partitioning all reduce to
//! comparing composite keys drawn from a batch's columns. The engine's
//! original path materialised one `Vec<ScalarKey>` — heap vector plus
//! cloned values, including full `String` clones — per row per key
//! column. A [`KeyBuffer`] instead encodes the key columns
//! column-at-a-time into one contiguous `u64` buffer:
//!
//! * `Int64` (and `Date`) → `(x as u64) ^ (1 << 63)`: flipping the sign
//!   bit makes unsigned order equal signed order.
//! * `Bool` → `0` / `1`.
//! * `Float64` → [`total_order_bits`]: unsigned order equals
//!   `f64::total_cmp` order (exact-bits equality, NaN included).
//! * `Utf8` → the value's rank in a sorted, deduplicated dictionary
//!   built over *all* rows handed to [`KeyBuffer::encode`] (one blocking
//!   operator invocation). Rank order is string order by construction.
//!
//! Within each column the `u64` order therefore equals the order of the
//! engine's legacy `ScalarKey` wrappers, and comparing rows word-by-word
//! equals comparing `Vec<ScalarKey>` lexicographically — so kernels
//! rebuilt on `KeyBuffer` produce byte-identical grouped/sorted output.
//! (Columns are homogeneously typed, so `ScalarKey`'s cross-variant enum
//! order never arises.)
//!
//! Dictionary ranks are only meaningful relative to the buffer that
//! built them: encodings from different `KeyBuffer`s must never be
//! compared. Cross-fragment agreement (shuffle partitioning) hashes raw
//! value bytes instead — see the engine's `partition_batch`.

use crate::columnar::{Batch, Column, Value};

/// Map an `f64` to bits whose unsigned order equals `total_cmp` order.
#[inline]
pub fn total_order_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`total_order_bits`].
#[inline]
pub fn bits_to_f64(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

const SIGN_FLIP: u64 = 1 << 63;

/// Per-key-column decode metadata.
#[derive(Debug, Clone)]
enum KeyEncoding {
    /// Sign-flipped two's complement (covers `Date`, stored as `Int64`).
    Int64,
    /// Total-order float bits.
    Float64,
    /// 0 / 1.
    Bool,
    /// Rank into a sorted distinct dictionary.
    Utf8(Vec<String>),
}

/// A contiguous, row-major buffer of normalized fixed-width keys: one
/// `u64` word per key column per row. See the module docs for the
/// encoding and its order-preservation contract.
#[derive(Debug, Clone)]
pub struct KeyBuffer {
    width: usize,
    rows: usize,
    words: Vec<u64>,
    encodings: Vec<KeyEncoding>,
}

impl KeyBuffer {
    /// Encode the given column indices of a run of batches (one blocking
    /// operator's input, concatenated row-major). String dictionaries
    /// span all batches so ranks are comparable across the whole run.
    ///
    /// Panics if a column index is out of range or batches disagree on a
    /// key column's type — callers resolve and type-check names first.
    pub fn encode(batches: &[&Batch], columns: &[usize]) -> KeyBuffer {
        let rows: usize = batches.iter().map(|b| b.num_rows()).sum();
        let width = columns.len();
        let mut words = vec![0u64; rows * width];
        let mut encodings = Vec::with_capacity(width);
        for (ci, &col) in columns.iter().enumerate() {
            let enc = encode_column(batches, col, ci, width, &mut words);
            encodings.push(enc);
        }
        KeyBuffer {
            width,
            rows,
            words,
            encodings,
        }
    }

    /// Number of encoded rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of key columns (words per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The normalized word of key column `c` in row `r`.
    #[inline]
    pub fn word(&self, r: usize, c: usize) -> u64 {
        self.words[r * self.width + c]
    }

    /// The full normalized key of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.width..(r + 1) * self.width]
    }

    /// Row indices sorted by normalized key (ties keep row order, so the
    /// permutation is stable). Equal slices group equal composite keys.
    pub fn sort_indices(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.rows as u32).collect();
        idx.sort_by(|&a, &b| self.row(a as usize).cmp(self.row(b as usize)));
        idx
    }

    /// Decode key column `c` of row `r` back to a [`Value`].
    pub fn value(&self, r: usize, c: usize) -> Value {
        let w = self.word(r, c);
        match &self.encodings[c] {
            KeyEncoding::Int64 => Value::Int64((w ^ SIGN_FLIP) as i64),
            KeyEncoding::Float64 => Value::Float64(bits_to_f64(w)),
            KeyEncoding::Bool => Value::Bool(w != 0),
            KeyEncoding::Utf8(dict) => Value::Utf8(dict[w as usize].clone()),
        }
    }

    /// Encode a probe column against key column `c`'s encoding (join
    /// probes reuse the build side's dictionary). `None` marks a row
    /// that cannot match any build key: a string absent from the build
    /// dictionary, or a probe column whose type differs from the build
    /// key's (the legacy `ScalarKey` path treats cross-type keys as
    /// never equal).
    pub fn encode_probe(&self, c: usize, col: &Column) -> Vec<Option<u64>> {
        match (&self.encodings[c], col) {
            (KeyEncoding::Int64, Column::Int64(v)) => {
                v.iter().map(|&x| Some(x as u64 ^ SIGN_FLIP)).collect()
            }
            (KeyEncoding::Float64, Column::Float64(v)) => {
                v.iter().map(|&x| Some(total_order_bits(x))).collect()
            }
            (KeyEncoding::Bool, Column::Bool(v)) => v.iter().map(|&b| Some(b as u64)).collect(),
            (KeyEncoding::Utf8(dict), Column::Utf8(v)) => v
                .iter()
                .map(|s| dict.binary_search(s).ok().map(|r| r as u64))
                .collect(),
            _ => vec![None; col.len()],
        }
    }
}

/// Encode one key column across all batches into the interleaved word
/// buffer, returning its decode metadata.
fn encode_column(
    batches: &[&Batch],
    col: usize,
    ci: usize,
    width: usize,
    words: &mut [u64],
) -> KeyEncoding {
    let mut base = 0usize;
    match batches.first().map(|b| &b.columns[col]) {
        None | Some(Column::Int64(_)) => {
            for b in batches {
                let Column::Int64(v) = &b.columns[col] else {
                    panic!("key column {col} changed type across batches");
                };
                for (r, &x) in v.iter().enumerate() {
                    words[(base + r) * width + ci] = x as u64 ^ SIGN_FLIP;
                }
                base += v.len();
            }
            KeyEncoding::Int64
        }
        Some(Column::Float64(_)) => {
            for b in batches {
                let Column::Float64(v) = &b.columns[col] else {
                    panic!("key column {col} changed type across batches");
                };
                for (r, &x) in v.iter().enumerate() {
                    words[(base + r) * width + ci] = total_order_bits(x);
                }
                base += v.len();
            }
            KeyEncoding::Float64
        }
        Some(Column::Bool(_)) => {
            for b in batches {
                let Column::Bool(v) = &b.columns[col] else {
                    panic!("key column {col} changed type across batches");
                };
                for (r, &x) in v.iter().enumerate() {
                    words[(base + r) * width + ci] = x as u64;
                }
                base += v.len();
            }
            KeyEncoding::Bool
        }
        Some(Column::Utf8(_)) => {
            // Sorted distinct dictionary over the whole run; rank order
            // is string order, so ranks compare like the strings.
            let mut refs: Vec<&str> = Vec::new();
            for b in batches {
                let Column::Utf8(v) = &b.columns[col] else {
                    panic!("key column {col} changed type across batches");
                };
                refs.extend(v.iter().map(String::as_str));
            }
            let mut dict: Vec<&str> = refs.clone();
            dict.sort_unstable();
            dict.dedup();
            for (r, s) in refs.iter().enumerate() {
                let rank = dict.binary_search(s).expect("dictionary covers all rows");
                words[(base + r) * width + ci] = rank as u64;
            }
            KeyEncoding::Utf8(dict.into_iter().map(str::to_string).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{Field, Schema};

    fn batch(cols: Vec<(&str, Column)>) -> Batch {
        let fields = cols
            .iter()
            .map(|(n, c)| Field::new(n, c.data_type()))
            .collect();
        Batch::new(
            Schema::new(fields),
            cols.into_iter().map(|(_, c)| c).collect(),
        )
    }

    #[test]
    fn float_bits_round_trip_and_order() {
        let xs = [
            f64::NEG_INFINITY,
            -1.25e300,
            -0.1,
            -0.0,
            0.0,
            3.5,
            f64::INFINITY,
            f64::NAN,
        ];
        for &x in &xs {
            assert_eq!(x.to_bits(), bits_to_f64(total_order_bits(x)).to_bits());
        }
        let mut bits: Vec<u64> = xs.iter().map(|&x| total_order_bits(x)).collect();
        let sorted = {
            let mut b = bits.clone();
            b.sort_unstable();
            b
        };
        bits.sort_by(|a, b| bits_to_f64(*a).total_cmp(&bits_to_f64(*b)));
        assert_eq!(bits, sorted);
    }

    #[test]
    fn int_keys_order_and_decode() {
        let b = batch(vec![(
            "k",
            Column::Int64(vec![3, -7, i64::MIN, i64::MAX, 0]),
        )]);
        let kb = KeyBuffer::encode(&[&b], &[0]);
        let order = kb.sort_indices();
        let sorted: Vec<i64> = order
            .iter()
            .map(|&r| match kb.value(r as usize, 0) {
                Value::Int64(x) => x,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sorted, vec![i64::MIN, -7, 0, 3, i64::MAX]);
    }

    #[test]
    fn string_dictionary_spans_batches() {
        let b1 = batch(vec![(
            "s",
            Column::Utf8(vec!["pear".into(), "apple".into()]),
        )]);
        let b2 = batch(vec![(
            "s",
            Column::Utf8(vec!["mango".into(), "apple".into()]),
        )]);
        let kb = KeyBuffer::encode(&[&b1, &b2], &[0]);
        assert_eq!(kb.rows(), 4);
        // Ranks: apple=0, mango=1, pear=2 — consistent across batches.
        assert_eq!(kb.word(0, 0), 2);
        assert_eq!(kb.word(1, 0), 0);
        assert_eq!(kb.word(2, 0), 1);
        assert_eq!(kb.word(3, 0), 0);
        assert_eq!(kb.value(2, 0), Value::Utf8("mango".into()));
    }

    #[test]
    fn composite_sort_is_stable_lexicographic() {
        let b = batch(vec![
            (
                "s",
                Column::Utf8(vec!["b".into(), "a".into(), "b".into(), "a".into()]),
            ),
            ("k", Column::Int64(vec![1, 2, 1, 2])),
        ]);
        let kb = KeyBuffer::encode(&[&b], &[0, 1]);
        // Equal composite keys keep row order: (a,2) rows 1,3 then (b,1) rows 0,2.
        assert_eq!(kb.sort_indices(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn probe_encoding_misses_and_type_mismatches() {
        let build = batch(vec![("s", Column::Utf8(vec!["x".into(), "z".into()]))]);
        let kb = KeyBuffer::encode(&[&build], &[0]);
        let probe = Column::Utf8(vec!["z".into(), "y".into(), "x".into()]);
        assert_eq!(kb.encode_probe(0, &probe), vec![Some(1), None, Some(0)]);
        // Cross-type probes never match (legacy ScalarKey semantics).
        let ints = Column::Int64(vec![0, 1]);
        assert_eq!(kb.encode_probe(0, &ints), vec![None, None]);
    }

    #[test]
    fn empty_input_is_fine() {
        let kb = KeyBuffer::encode(&[], &[0, 1]);
        assert_eq!(kb.rows(), 0);
        assert!(kb.sort_indices().is_empty());
    }
}
