//! SPF — the Skyrise Portable Format: a columnar file format in the
//! spirit of Parquet/ORC (paper Sec. 3.2).
//!
//! Layout:
//!
//! ```text
//! +--------+----------------------+--------+-----------+--------+
//! | "SPF1" | column chunks ...    | footer | footerlen | "SPF1" |
//! +--------+----------------------+--------+-----------+--------+
//! ```
//!
//! * Data is split into **row groups**; each stores one encoded **chunk**
//!   per column, with min/max **zone maps** in the footer so scans can
//!   "read file metadata to identify relevant data and push down
//!   projections and selections".
//! * Encodings: zigzag-varint **delta** for integers/dates, raw
//!   little-endian for floats, **dictionary** or raw for strings, bitmaps
//!   for booleans.
//! * The footer sits at the tail, so a remote reader needs exactly three
//!   ranged requests: tail trailer → footer → relevant column chunks.

use crate::columnar::{Batch, Column, DataType, Field, Schema, Value};
use bytes::Bytes;
use std::rc::Rc;

/// File magic, present at both ends.
pub const MAGIC: &[u8; 4] = b"SPF1";
/// Size of the tail trailer: u32 footer length + magic.
pub const TRAILER_LEN: u64 = 8;

/// Errors raised while decoding an SPF file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpfError {
    /// Missing or corrupt magic/trailer.
    NotAnSpfFile,
    /// Truncated or internally inconsistent data.
    Corrupt(&'static str),
    /// Projection references a field the schema lacks.
    UnknownColumn(String),
}

impl std::fmt::Display for SpfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpfError::NotAnSpfFile => write!(f, "not an SPF file"),
            SpfError::Corrupt(what) => write!(f, "corrupt SPF file: {what}"),
            SpfError::UnknownColumn(c) => write!(f, "unknown column {c}"),
        }
    }
}

impl std::error::Error for SpfError {}

/// Chunk encoding identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Zigzag-varint delta coding for integers/dates.
    DeltaVarint = 0,
    /// Raw little-endian 8-byte floats.
    FloatPlain = 1,
    /// Length-prefixed raw strings.
    Utf8Plain = 2,
    /// Dictionary + varint indices for low-cardinality strings.
    Utf8Dict = 3,
    /// One bit per value.
    BoolBitmap = 4,
}

impl Encoding {
    fn from_u8(v: u8) -> Result<Self, SpfError> {
        Ok(match v {
            0 => Encoding::DeltaVarint,
            1 => Encoding::FloatPlain,
            2 => Encoding::Utf8Plain,
            3 => Encoding::Utf8Dict,
            4 => Encoding::BoolBitmap,
            _ => return Err(SpfError::Corrupt("unknown encoding")),
        })
    }
}

/// Zone-map statistics of one column chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkStats {
    /// Smallest value in the chunk.
    pub min: Value,
    /// Largest value in the chunk.
    pub max: Value,
}

/// Location and metadata of one encoded column chunk.
#[derive(Debug, Clone)]
pub struct ChunkMeta {
    /// Byte offset of the chunk within the file.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
    /// How the chunk is encoded.
    pub encoding: Encoding,
    /// Rows in the chunk.
    pub rows: u32,
    /// Zone-map statistics, when available.
    pub stats: Option<ChunkStats>,
}

/// Metadata of one row group.
#[derive(Debug, Clone)]
pub struct RowGroupMeta {
    /// Rows in this group.
    pub rows: u32,
    /// One chunk per schema field, in order.
    pub chunks: Vec<ChunkMeta>,
}

/// The file footer: schema plus row-group directory.
#[derive(Debug, Clone)]
pub struct Footer {
    /// File schema.
    pub schema: Rc<Schema>,
    /// Row-group directory.
    pub row_groups: Vec<RowGroupMeta>,
}

impl Footer {
    /// Total row count.
    pub fn total_rows(&self) -> u64 {
        self.row_groups.iter().map(|rg| rg.rows as u64).sum()
    }
}

// ---------------------------------------------------------------------------
// primitive encoding helpers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked little-endian reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SpfError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SpfError::Corrupt("unexpected end of buffer"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SpfError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SpfError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, SpfError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, SpfError> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, SpfError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn varint(&mut self) -> Result<u64, SpfError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = self.u8()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(SpfError::Corrupt("varint overflow"));
            }
        }
    }

    fn string(&mut self) -> Result<String, SpfError> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SpfError::Corrupt("invalid utf8"))
    }
}

// ---------------------------------------------------------------------------
// column chunk encode/decode
// ---------------------------------------------------------------------------

fn encode_column(col: &Column) -> (Vec<u8>, Encoding, Option<ChunkStats>) {
    match col {
        Column::Int64(v) => {
            let mut out = Vec::with_capacity(v.len() * 2);
            let mut prev = 0i64;
            for &x in v {
                put_varint(&mut out, zigzag(x.wrapping_sub(prev)));
                prev = x;
            }
            let stats = v.iter().copied().fold(None::<(i64, i64)>, |acc, x| {
                Some(acc.map_or((x, x), |(lo, hi)| (lo.min(x), hi.max(x))))
            });
            (
                out,
                Encoding::DeltaVarint,
                stats.map(|(lo, hi)| ChunkStats {
                    min: Value::Int64(lo),
                    max: Value::Int64(hi),
                }),
            )
        }
        Column::Float64(v) => {
            let mut out = Vec::with_capacity(v.len() * 8);
            for &x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
            let stats = v
                .iter()
                .copied()
                .filter(|x| !x.is_nan())
                .fold(None::<(f64, f64)>, |acc, x| {
                    Some(acc.map_or((x, x), |(lo, hi)| (lo.min(x), hi.max(x))))
                });
            (
                out,
                Encoding::FloatPlain,
                stats.map(|(lo, hi)| ChunkStats {
                    min: Value::Float64(lo),
                    max: Value::Float64(hi),
                }),
            )
        }
        Column::Utf8(v) => {
            // Dictionary-encode when it pays off.
            let mut dict: Vec<&str> = Vec::new();
            let mut distinct_small = true;
            for s in v {
                if !dict.contains(&s.as_str()) {
                    dict.push(s);
                    if dict.len() > 256 || dict.len() * 2 > v.len().max(8) {
                        distinct_small = false;
                        break;
                    }
                }
            }
            let stats = {
                let mut it = v.iter();
                it.next().map(|first| {
                    let (mut lo, mut hi) = (first, first);
                    for s in v {
                        if s < lo {
                            lo = s;
                        }
                        if s > hi {
                            hi = s;
                        }
                    }
                    ChunkStats {
                        min: Value::Utf8(lo.clone()),
                        max: Value::Utf8(hi.clone()),
                    }
                })
            };
            if distinct_small && !v.is_empty() {
                let mut out = Vec::new();
                put_u32(&mut out, dict.len() as u32);
                for s in &dict {
                    put_u32(&mut out, s.len() as u32);
                    out.extend_from_slice(s.as_bytes());
                }
                for s in v {
                    let idx = dict.iter().position(|d| d == s).expect("in dict") as u64;
                    put_varint(&mut out, idx);
                }
                (out, Encoding::Utf8Dict, stats)
            } else {
                let mut out = Vec::new();
                for s in v {
                    put_u32(&mut out, s.len() as u32);
                    out.extend_from_slice(s.as_bytes());
                }
                (out, Encoding::Utf8Plain, stats)
            }
        }
        Column::Bool(v) => {
            let mut out = vec![0u8; v.len().div_ceil(8)];
            for (i, &b) in v.iter().enumerate() {
                if b {
                    out[i / 8] |= 1 << (i % 8);
                }
            }
            (out, Encoding::BoolBitmap, None)
        }
    }
}

fn decode_column(buf: &[u8], encoding: Encoding, rows: usize) -> Result<Column, SpfError> {
    let mut cur = Cursor::new(buf);
    Ok(match encoding {
        Encoding::DeltaVarint => {
            let mut out = Vec::with_capacity(rows);
            let mut prev = 0i64;
            for _ in 0..rows {
                prev = prev.wrapping_add(unzigzag(cur.varint()?));
                out.push(prev);
            }
            Column::Int64(out)
        }
        Encoding::FloatPlain => {
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                out.push(cur.f64()?);
            }
            Column::Float64(out)
        }
        Encoding::Utf8Plain => {
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                out.push(cur.string()?);
            }
            Column::Utf8(out)
        }
        Encoding::Utf8Dict => {
            let n = cur.u32()? as usize;
            let mut dict = Vec::with_capacity(n);
            for _ in 0..n {
                dict.push(cur.string()?);
            }
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                let idx = cur.varint()? as usize;
                let s = dict
                    .get(idx)
                    .ok_or(SpfError::Corrupt("dict index out of range"))?;
                out.push(s.clone());
            }
            Column::Utf8(out)
        }
        Encoding::BoolBitmap => {
            let bytes = cur.bytes(rows.div_ceil(8))?;
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                out.push(bytes[i / 8] & (1 << (i % 8)) != 0);
            }
            Column::Bool(out)
        }
    })
}

fn put_stats(out: &mut Vec<u8>, stats: &Option<ChunkStats>) {
    match stats {
        None => out.push(0),
        Some(s) => {
            match (&s.min, &s.max) {
                (Value::Int64(lo), Value::Int64(hi)) => {
                    out.push(1);
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
                (Value::Float64(lo), Value::Float64(hi)) => {
                    out.push(2);
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
                (Value::Utf8(lo), Value::Utf8(hi)) => {
                    out.push(3);
                    put_u32(out, lo.len() as u32);
                    out.extend_from_slice(lo.as_bytes());
                    put_u32(out, hi.len() as u32);
                    out.extend_from_slice(hi.as_bytes());
                }
                _ => out.push(0),
            };
        }
    }
}

fn read_stats(cur: &mut Cursor<'_>) -> Result<Option<ChunkStats>, SpfError> {
    Ok(match cur.u8()? {
        0 => None,
        1 => Some(ChunkStats {
            min: Value::Int64(cur.i64()?),
            max: Value::Int64(cur.i64()?),
        }),
        2 => Some(ChunkStats {
            min: Value::Float64(cur.f64()?),
            max: Value::Float64(cur.f64()?),
        }),
        3 => Some(ChunkStats {
            min: Value::Utf8(cur.string()?),
            max: Value::Utf8(cur.string()?),
        }),
        _ => return Err(SpfError::Corrupt("bad stats tag")),
    })
}

// ---------------------------------------------------------------------------
// writer / reader
// ---------------------------------------------------------------------------

/// Encode batches into an SPF file, re-chunking to `rows_per_group`.
pub fn write(batches: &[Batch], rows_per_group: usize) -> Bytes {
    assert!(rows_per_group > 0, "rows_per_group must be positive");
    let schema = batches
        .first()
        .map(|b| Rc::clone(&b.schema))
        .expect("write needs at least one batch");
    let all = Batch::concat(batches);
    let mut file = Vec::new();
    file.extend_from_slice(MAGIC);

    let mut row_groups = Vec::new();
    let total = all.num_rows();
    let mut start = 0usize;
    while start < total || (total == 0 && row_groups.is_empty()) {
        let end = (start + rows_per_group).min(total);
        let rg = all.slice(start, end);
        let mut chunks = Vec::with_capacity(rg.columns.len());
        for col in &rg.columns {
            let (data, encoding, stats) = encode_column(col);
            chunks.push(ChunkMeta {
                offset: file.len() as u64,
                len: data.len() as u64,
                encoding,
                rows: rg.num_rows() as u32,
                stats,
            });
            file.extend_from_slice(&data);
        }
        row_groups.push(RowGroupMeta {
            rows: rg.num_rows() as u32,
            chunks,
        });
        if total == 0 {
            break;
        }
        start = end;
    }

    // Footer.
    let mut footer = Vec::new();
    put_u32(&mut footer, schema.len() as u32);
    for f in &schema.fields {
        put_u32(&mut footer, f.name.len() as u32);
        footer.extend_from_slice(f.name.as_bytes());
        footer.push(match f.data_type {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Utf8 => 2,
            DataType::Bool => 3,
            DataType::Date => 4,
        });
    }
    put_u32(&mut footer, row_groups.len() as u32);
    for rg in &row_groups {
        put_u32(&mut footer, rg.rows);
        put_u32(&mut footer, rg.chunks.len() as u32);
        for c in &rg.chunks {
            put_u64(&mut footer, c.offset);
            put_u64(&mut footer, c.len);
            footer.push(c.encoding as u8);
            put_u32(&mut footer, c.rows);
            put_stats(&mut footer, &c.stats);
        }
    }

    let footer_len = footer.len() as u32;
    file.extend_from_slice(&footer);
    file.extend_from_slice(&footer_len.to_le_bytes());
    file.extend_from_slice(MAGIC);
    Bytes::from(file)
}

/// Parse the footer given the full file (local path).
pub fn read_footer(file: &[u8]) -> Result<Footer, SpfError> {
    if file.len() < 16 || &file[..4] != MAGIC || &file[file.len() - 4..] != MAGIC {
        return Err(SpfError::NotAnSpfFile);
    }
    let footer_len = u32::from_le_bytes(
        file[file.len() - 8..file.len() - 4]
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    let footer_end = file.len() - 8;
    let footer_start = footer_end
        .checked_sub(footer_len)
        .ok_or(SpfError::Corrupt("footer length exceeds file"))?;
    parse_footer(&file[footer_start..footer_end])
}

/// The byte range `[start, len)` of the footer, derived from the 8-byte
/// trailer — what a remote reader fetches second.
pub fn footer_range(trailer: &[u8], file_len: u64) -> Result<(u64, u64), SpfError> {
    if trailer.len() != TRAILER_LEN as usize || &trailer[4..] != MAGIC {
        return Err(SpfError::NotAnSpfFile);
    }
    let footer_len = u32::from_le_bytes(trailer[..4].try_into().expect("4 bytes")) as u64;
    let start = file_len
        .checked_sub(TRAILER_LEN + footer_len)
        .ok_or(SpfError::Corrupt("footer length exceeds file"))?;
    Ok((start, footer_len))
}

/// Parse footer bytes (as fetched via [`footer_range`]).
pub fn parse_footer(buf: &[u8]) -> Result<Footer, SpfError> {
    let mut cur = Cursor::new(buf);
    let n_fields = cur.u32()? as usize;
    let mut fields = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let name = cur.string()?;
        let dtype = match cur.u8()? {
            0 => DataType::Int64,
            1 => DataType::Float64,
            2 => DataType::Utf8,
            3 => DataType::Bool,
            4 => DataType::Date,
            _ => return Err(SpfError::Corrupt("bad data type")),
        };
        fields.push(Field {
            name,
            data_type: dtype,
        });
    }
    let n_groups = cur.u32()? as usize;
    let mut row_groups = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        let rows = cur.u32()?;
        let n_chunks = cur.u32()? as usize;
        if n_chunks != n_fields {
            return Err(SpfError::Corrupt("chunk count != field count"));
        }
        let mut chunks = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            chunks.push(ChunkMeta {
                offset: cur.u64()?,
                len: cur.u64()?,
                encoding: Encoding::from_u8(cur.u8()?)?,
                rows: cur.u32()?,
                stats: read_stats(&mut cur)?,
            });
        }
        row_groups.push(RowGroupMeta { rows, chunks });
    }
    Ok(Footer {
        schema: Schema::new(fields),
        row_groups,
    })
}

/// Decode one column chunk fetched from `[meta.offset, meta.len)`.
pub fn decode_chunk(meta: &ChunkMeta, data: &[u8]) -> Result<Column, SpfError> {
    if data.len() as u64 != meta.len {
        return Err(SpfError::Corrupt("chunk length mismatch"));
    }
    decode_column(data, meta.encoding, meta.rows as usize)
}

/// Read one row group from a local file, restricted to `projection`
/// (field names). `None` means all columns.
pub fn read_row_group(
    file: &[u8],
    footer: &Footer,
    rg_idx: usize,
    projection: Option<&[String]>,
) -> Result<Batch, SpfError> {
    let rg = footer
        .row_groups
        .get(rg_idx)
        .ok_or(SpfError::Corrupt("row group index out of range"))?;
    let indices: Vec<usize> = match projection {
        None => (0..footer.schema.len()).collect(),
        Some(names) => names
            .iter()
            .map(|n| {
                footer
                    .schema
                    .index_of(n)
                    .ok_or_else(|| SpfError::UnknownColumn(n.clone()))
            })
            .collect::<Result<_, _>>()?,
    };
    let mut columns = Vec::with_capacity(indices.len());
    for &i in &indices {
        let c = &rg.chunks[i];
        let start = c.offset as usize;
        let end = start + c.len as usize;
        if end > file.len() {
            return Err(SpfError::Corrupt("chunk out of file bounds"));
        }
        columns.push(decode_chunk(c, &file[start..end])?);
    }
    Ok(Batch::new(footer.schema.project(&indices), columns))
}

/// Read the whole file into batches (one per row group).
pub fn read_all(file: &[u8], projection: Option<&[String]>) -> Result<Vec<Batch>, SpfError> {
    let footer = read_footer(file)?;
    (0..footer.row_groups.len())
        .map(|i| read_row_group(file, &footer, i, projection))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{date, Field};
    use proptest::prelude::*;

    fn sample_batch(n: usize) -> Batch {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
            Field::new("tag", DataType::Utf8),
            Field::new("ok", DataType::Bool),
            Field::new("d", DataType::Date),
        ]);
        Batch::new(
            schema,
            vec![
                Column::Int64((0..n as i64).map(|i| i * 37 - 11).collect()),
                Column::Float64((0..n).map(|i| i as f64 * 0.5 - 3.0).collect()),
                Column::Utf8((0..n).map(|i| format!("tag{}", i % 5)).collect()),
                Column::Bool((0..n).map(|i| i % 3 == 0).collect()),
                Column::Int64(
                    (0..n as i64)
                        .map(|i| date::from_ymd(1995, 1, 1) + i)
                        .collect(),
                ),
            ],
        )
    }

    #[test]
    fn roundtrip_all_types() {
        let batch = sample_batch(1000);
        let file = write(std::slice::from_ref(&batch), 256);
        let out = read_all(&file, None).unwrap();
        let merged = Batch::concat(&out);
        assert_eq!(merged.columns, batch.columns);
        assert_eq!(out.len(), 4, "1000 rows / 256 per group");
    }

    #[test]
    fn projection_reads_only_requested_columns() {
        let batch = sample_batch(100);
        let file = write(std::slice::from_ref(&batch), 64);
        let out = read_all(&file, Some(&["tag".to_string(), "k".to_string()])).unwrap();
        assert_eq!(out[0].schema.fields.len(), 2);
        assert_eq!(out[0].schema.fields[0].name, "tag");
        assert_eq!(
            Batch::concat(&out).column("k").as_i64(),
            batch.column("k").as_i64()
        );
    }

    #[test]
    fn unknown_projection_column_errors() {
        let file = write(&[sample_batch(10)], 10);
        assert!(matches!(
            read_all(&file, Some(&["zzz".to_string()])),
            Err(SpfError::UnknownColumn(_))
        ));
    }

    #[test]
    fn zone_maps_present_and_correct() {
        let file = write(&[sample_batch(100)], 50);
        let footer = read_footer(&file).unwrap();
        assert_eq!(footer.row_groups.len(), 2);
        let c0 = &footer.row_groups[0].chunks[0];
        let stats = c0.stats.as_ref().unwrap();
        assert_eq!(stats.min, Value::Int64(-11));
        assert_eq!(stats.max, Value::Int64(49 * 37 - 11));
        // Second group starts where the first ended.
        let c1 = &footer.row_groups[1].chunks[0];
        assert_eq!(c1.stats.as_ref().unwrap().min, Value::Int64(50 * 37 - 11));
    }

    #[test]
    fn remote_read_protocol_with_ranges() {
        // Simulate the three-request remote pattern.
        let batch = sample_batch(300);
        let file = write(std::slice::from_ref(&batch), 100);
        let file_len = file.len() as u64;
        let trailer = &file[file.len() - 8..];
        let (fstart, flen) = footer_range(trailer, file_len).unwrap();
        let footer = parse_footer(&file[fstart as usize..(fstart + flen) as usize]).unwrap();
        assert_eq!(footer.total_rows(), 300);
        // Fetch one chunk by range and decode it.
        let c = &footer.row_groups[1].chunks[1];
        let chunk = &file[c.offset as usize..(c.offset + c.len) as usize];
        let col = decode_chunk(c, chunk).unwrap();
        assert_eq!(col.as_f64(), batch.column("v").slice(100, 200).as_f64());
    }

    #[test]
    fn dictionary_encoding_kicks_in_for_low_cardinality() {
        let n = 1000;
        let schema = Schema::new(vec![Field::new("mode", DataType::Utf8)]);
        let low = Batch::new(
            Rc::clone(&schema),
            vec![Column::Utf8(
                (0..n).map(|i| format!("M{}", i % 4)).collect(),
            )],
        );
        let high = Batch::new(
            schema,
            vec![Column::Utf8(
                (0..n).map(|i| format!("unique-{i}")).collect(),
            )],
        );
        let f_low = write(&[low], n);
        let f_high = write(&[high], n);
        let foot_low = read_footer(&f_low).unwrap();
        let foot_high = read_footer(&f_high).unwrap();
        assert_eq!(
            foot_low.row_groups[0].chunks[0].encoding,
            Encoding::Utf8Dict
        );
        assert_eq!(
            foot_high.row_groups[0].chunks[0].encoding,
            Encoding::Utf8Plain
        );
        assert!(f_low.len() * 4 < f_high.len(), "dict compresses");
    }

    #[test]
    fn corrupt_files_rejected() {
        assert_eq!(read_footer(b"hello").unwrap_err(), SpfError::NotAnSpfFile);
        let file = write(&[sample_batch(10)], 10);
        let mut broken = file.to_vec();
        let len = broken.len();
        broken[len - 6] = 0xff; // mangle footer length
        assert!(read_footer(&broken).is_err());
    }

    #[test]
    fn empty_batch_roundtrips() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let file = write(&[Batch::empty(schema)], 10);
        let out = read_all(&file, None).unwrap();
        assert_eq!(out.iter().map(Batch::num_rows).sum::<usize>(), 0);
    }

    proptest! {
        #[test]
        fn prop_int_roundtrip(values in prop::collection::vec(any::<i64>(), 0..300), group in 1usize..100) {
            let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
            let batch = Batch::new(schema, vec![Column::Int64(values.clone())]);
            let file = write(&[batch], group);
            let out = Batch::concat(&read_all(&file, None).unwrap());
            prop_assert_eq!(out.column("x").as_i64(), &values[..]);
        }

        #[test]
        fn prop_string_roundtrip(values in prop::collection::vec("[a-z]{0,12}", 0..200)) {
            let schema = Schema::new(vec![Field::new("s", DataType::Utf8)]);
            let batch = Batch::new(schema, vec![Column::Utf8(values.clone())]);
            let file = write(&[batch], 64);
            let out = Batch::concat(&read_all(&file, None).unwrap());
            prop_assert_eq!(out.column("s").as_str(), &values[..]);
        }

        #[test]
        fn prop_float_roundtrip_bits(values in prop::collection::vec(any::<f64>(), 0..200)) {
            let schema = Schema::new(vec![Field::new("f", DataType::Float64)]);
            let batch = Batch::new(schema, vec![Column::Float64(values.clone())]);
            let file = write(&[batch], 50);
            let out = Batch::concat(&read_all(&file, None).unwrap());
            let got = out.column("f").as_f64();
            prop_assert_eq!(got.len(), values.len());
            for (a, b) in got.iter().zip(&values) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn prop_zone_maps_bound_all_values(values in prop::collection::vec(-1000i64..1000, 1..200)) {
            let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
            let batch = Batch::new(schema, vec![Column::Int64(values.clone())]);
            let file = write(&[batch], 32);
            let footer = read_footer(&file).unwrap();
            let mut offset = 0usize;
            for rg in &footer.row_groups {
                let stats = rg.chunks[0].stats.as_ref().unwrap();
                let Value::Int64(lo) = &stats.min else {
                    panic!("int stats expected");
                };
                let Value::Int64(hi) = &stats.max else {
                    panic!("int stats expected");
                };
                for &v in &values[offset..offset + rg.rows as usize] {
                    prop_assert!(*lo <= v && v <= *hi);
                }
                offset += rg.rows as usize;
            }
        }
    }
}
