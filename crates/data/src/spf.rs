//! SPF — the Skyrise Portable Format: a columnar file format in the
//! spirit of Parquet/ORC (paper Sec. 3.2).
//!
//! Layout:
//!
//! ```text
//! +--------+----------------------+--------+-----------+--------+
//! | "SPF1" | column chunks ...    | footer | footerlen | "SPF1" |
//! +--------+----------------------+--------+-----------+--------+
//! ```
//!
//! * Data is split into **row groups**; each stores one encoded **chunk**
//!   per column, with min/max **zone maps** in the footer so scans can
//!   "read file metadata to identify relevant data and push down
//!   projections and selections".
//! * Encodings: zigzag-varint **delta** for integers/dates, raw
//!   little-endian for floats, **dictionary** or raw for strings, bitmaps
//!   for booleans.
//! * The footer sits at the tail, so a remote reader needs exactly three
//!   ranged requests: tail trailer → footer → relevant column chunks.

use crate::columnar::{Batch, Column, DataType, Field, Schema, Value};
use bytes::Bytes;
use std::rc::Rc;

/// File magic, present at both ends.
pub const MAGIC: &[u8; 4] = b"SPF1";
/// Size of the tail trailer: u32 footer length + magic.
pub const TRAILER_LEN: u64 = 8;

/// Errors raised while decoding an SPF file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpfError {
    /// Missing or corrupt magic/trailer.
    NotAnSpfFile,
    /// Truncated or internally inconsistent data.
    Corrupt(&'static str),
    /// Projection references a field the schema lacks.
    UnknownColumn(String),
}

impl std::fmt::Display for SpfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpfError::NotAnSpfFile => write!(f, "not an SPF file"),
            SpfError::Corrupt(what) => write!(f, "corrupt SPF file: {what}"),
            SpfError::UnknownColumn(c) => write!(f, "unknown column {c}"),
        }
    }
}

impl std::error::Error for SpfError {}

/// Chunk encoding identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Zigzag-varint delta coding for integers/dates.
    DeltaVarint = 0,
    /// Raw little-endian 8-byte floats.
    FloatPlain = 1,
    /// Length-prefixed raw strings.
    Utf8Plain = 2,
    /// Dictionary + varint indices for low-cardinality strings.
    Utf8Dict = 3,
    /// One bit per value.
    BoolBitmap = 4,
}

impl Encoding {
    fn from_u8(v: u8) -> Result<Self, SpfError> {
        Ok(match v {
            0 => Encoding::DeltaVarint,
            1 => Encoding::FloatPlain,
            2 => Encoding::Utf8Plain,
            3 => Encoding::Utf8Dict,
            4 => Encoding::BoolBitmap,
            _ => return Err(SpfError::Corrupt("unknown encoding")),
        })
    }
}

/// Zone-map statistics of one column chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkStats {
    /// Smallest value in the chunk.
    pub min: Value,
    /// Largest value in the chunk.
    pub max: Value,
}

/// Location and metadata of one encoded column chunk.
#[derive(Debug, Clone)]
pub struct ChunkMeta {
    /// Byte offset of the chunk within the file.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
    /// How the chunk is encoded.
    pub encoding: Encoding,
    /// Rows in the chunk.
    pub rows: u32,
    /// Zone-map statistics, when available.
    pub stats: Option<ChunkStats>,
}

/// Metadata of one row group.
#[derive(Debug, Clone)]
pub struct RowGroupMeta {
    /// Rows in this group.
    pub rows: u32,
    /// One chunk per schema field, in order.
    pub chunks: Vec<ChunkMeta>,
}

/// The file footer: schema plus row-group directory.
#[derive(Debug, Clone)]
pub struct Footer {
    /// File schema.
    pub schema: Rc<Schema>,
    /// Row-group directory.
    pub row_groups: Vec<RowGroupMeta>,
}

impl Footer {
    /// Total row count.
    pub fn total_rows(&self) -> u64 {
        self.row_groups.iter().map(|rg| rg.rows as u64).sum()
    }
}

/// Marker introducing the bucket-index footer section (`"SBK1"` as a
/// little-endian u32). [`parse_footer`] stops after the row-group
/// directory, so pre-index readers skip the section transparently.
const BUCKET_INDEX_MAGIC: u32 = u32::from_le_bytes(*b"SBK1");
/// Version byte of the bucket-index section.
pub const BUCKET_INDEX_VERSION: u8 = 1;

/// One bucket's sub-segment within a bucket-indexed shuffle object: a
/// contiguous run of row groups plus the byte range their chunks span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketEntry {
    /// Rows across the bucket's row groups.
    pub rows: u64,
    /// Index of the bucket's first row group in the footer directory.
    pub first_group: u32,
    /// Number of consecutive row groups belonging to the bucket.
    pub n_groups: u32,
    /// First file byte of the bucket's chunk data.
    pub byte_start: u64,
    /// One past the last file byte of the bucket's chunk data
    /// (`byte_start == byte_end` for an empty bucket).
    pub byte_end: u64,
}

/// The per-bucket sub-segment directory of a bucket-indexed shuffle
/// object, carried as a versioned section appended inside the footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketIndex {
    /// One entry per bucket, in bucket order.
    pub buckets: Vec<BucketEntry>,
}

impl BucketIndex {
    /// The row-group directory slice belonging to `bucket`.
    pub fn row_groups<'a>(&self, footer: &'a Footer, bucket: usize) -> &'a [RowGroupMeta] {
        let e = &self.buckets[bucket];
        &footer.row_groups[e.first_group as usize..(e.first_group + e.n_groups) as usize]
    }
}

// ---------------------------------------------------------------------------
// primitive encoding helpers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked little-endian reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SpfError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SpfError::Corrupt("unexpected end of buffer"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SpfError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SpfError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, SpfError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, SpfError> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, SpfError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn varint(&mut self) -> Result<u64, SpfError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = self.u8()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(SpfError::Corrupt("varint overflow"));
            }
        }
    }

    fn string(&mut self) -> Result<String, SpfError> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SpfError::Corrupt("invalid utf8"))
    }
}

// ---------------------------------------------------------------------------
// column chunk encode/decode
// ---------------------------------------------------------------------------

fn encode_column(col: &Column) -> (Vec<u8>, Encoding, Option<ChunkStats>) {
    match col {
        Column::Int64(v) => {
            let mut out = Vec::with_capacity(v.len() * 2);
            let mut prev = 0i64;
            for &x in v {
                put_varint(&mut out, zigzag(x.wrapping_sub(prev)));
                prev = x;
            }
            let stats = v.iter().copied().fold(None::<(i64, i64)>, |acc, x| {
                Some(acc.map_or((x, x), |(lo, hi)| (lo.min(x), hi.max(x))))
            });
            (
                out,
                Encoding::DeltaVarint,
                stats.map(|(lo, hi)| ChunkStats {
                    min: Value::Int64(lo),
                    max: Value::Int64(hi),
                }),
            )
        }
        Column::Float64(v) => {
            let mut out = Vec::with_capacity(v.len() * 8);
            for &x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
            let stats = v
                .iter()
                .copied()
                .filter(|x| !x.is_nan())
                .fold(None::<(f64, f64)>, |acc, x| {
                    Some(acc.map_or((x, x), |(lo, hi)| (lo.min(x), hi.max(x))))
                });
            (
                out,
                Encoding::FloatPlain,
                stats.map(|(lo, hi)| ChunkStats {
                    min: Value::Float64(lo),
                    max: Value::Float64(hi),
                }),
            )
        }
        Column::Utf8(v) => {
            // Dictionary-encode when it pays off. The dictionary keeps
            // first-occurrence order (part of the emitted bytes); the map
            // only accelerates membership/position lookups.
            let mut dict: Vec<&str> = Vec::new();
            let mut index: std::collections::BTreeMap<&str, u64> =
                std::collections::BTreeMap::new();
            let mut distinct_small = true;
            for s in v {
                if !index.contains_key(s.as_str()) {
                    index.insert(s.as_str(), dict.len() as u64);
                    dict.push(s);
                    if dict.len() > 256 || dict.len() * 2 > v.len().max(8) {
                        distinct_small = false;
                        break;
                    }
                }
            }
            let stats = {
                let mut it = v.iter();
                it.next().map(|first| {
                    let (mut lo, mut hi) = (first, first);
                    for s in v {
                        if s < lo {
                            lo = s;
                        }
                        if s > hi {
                            hi = s;
                        }
                    }
                    ChunkStats {
                        min: Value::Utf8(lo.clone()),
                        max: Value::Utf8(hi.clone()),
                    }
                })
            };
            if distinct_small && !v.is_empty() {
                let mut out = Vec::new();
                put_u32(&mut out, dict.len() as u32);
                for s in &dict {
                    put_u32(&mut out, s.len() as u32);
                    out.extend_from_slice(s.as_bytes());
                }
                for s in v {
                    let idx = *index.get(s.as_str()).expect("in dict");
                    put_varint(&mut out, idx);
                }
                (out, Encoding::Utf8Dict, stats)
            } else {
                let mut out = Vec::new();
                for s in v {
                    put_u32(&mut out, s.len() as u32);
                    out.extend_from_slice(s.as_bytes());
                }
                (out, Encoding::Utf8Plain, stats)
            }
        }
        Column::Bool(v) => {
            let mut out = vec![0u8; v.len().div_ceil(8)];
            for (i, &b) in v.iter().enumerate() {
                if b {
                    out[i / 8] |= 1 << (i % 8);
                }
            }
            (out, Encoding::BoolBitmap, None)
        }
    }
}

fn decode_column(buf: &[u8], encoding: Encoding, rows: usize) -> Result<Column, SpfError> {
    let mut cur = Cursor::new(buf);
    Ok(match encoding {
        Encoding::DeltaVarint => {
            let mut out = Vec::with_capacity(rows);
            let mut prev = 0i64;
            for _ in 0..rows {
                prev = prev.wrapping_add(unzigzag(cur.varint()?));
                out.push(prev);
            }
            Column::Int64(out)
        }
        Encoding::FloatPlain => {
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                out.push(cur.f64()?);
            }
            Column::Float64(out)
        }
        Encoding::Utf8Plain => {
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                out.push(cur.string()?);
            }
            Column::Utf8(out)
        }
        Encoding::Utf8Dict => {
            let n = cur.u32()? as usize;
            let mut dict = Vec::with_capacity(n);
            for _ in 0..n {
                dict.push(cur.string()?);
            }
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                let idx = cur.varint()? as usize;
                let s = dict
                    .get(idx)
                    .ok_or(SpfError::Corrupt("dict index out of range"))?;
                out.push(s.clone());
            }
            Column::Utf8(out)
        }
        Encoding::BoolBitmap => {
            let bytes = cur.bytes(rows.div_ceil(8))?;
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                out.push(bytes[i / 8] & (1 << (i % 8)) != 0);
            }
            Column::Bool(out)
        }
    })
}

fn put_stats(out: &mut Vec<u8>, stats: &Option<ChunkStats>) {
    match stats {
        None => out.push(0),
        Some(s) => {
            match (&s.min, &s.max) {
                (Value::Int64(lo), Value::Int64(hi)) => {
                    out.push(1);
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
                (Value::Float64(lo), Value::Float64(hi)) => {
                    out.push(2);
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
                (Value::Utf8(lo), Value::Utf8(hi)) => {
                    out.push(3);
                    put_u32(out, lo.len() as u32);
                    out.extend_from_slice(lo.as_bytes());
                    put_u32(out, hi.len() as u32);
                    out.extend_from_slice(hi.as_bytes());
                }
                _ => out.push(0),
            };
        }
    }
}

fn read_stats(cur: &mut Cursor<'_>) -> Result<Option<ChunkStats>, SpfError> {
    Ok(match cur.u8()? {
        0 => None,
        1 => Some(ChunkStats {
            min: Value::Int64(cur.i64()?),
            max: Value::Int64(cur.i64()?),
        }),
        2 => Some(ChunkStats {
            min: Value::Float64(cur.f64()?),
            max: Value::Float64(cur.f64()?),
        }),
        3 => Some(ChunkStats {
            min: Value::Utf8(cur.string()?),
            max: Value::Utf8(cur.string()?),
        }),
        _ => return Err(SpfError::Corrupt("bad stats tag")),
    })
}

// ---------------------------------------------------------------------------
// writer / reader
// ---------------------------------------------------------------------------

/// Append `batch` to `file` as row groups of `rows_per_group`, recording
/// their directory entries. `force_group` emits one empty row group for an
/// empty batch (legacy `write` behaviour) instead of none.
fn encode_row_groups(
    file: &mut Vec<u8>,
    batch: &Batch,
    rows_per_group: usize,
    force_group: bool,
    row_groups: &mut Vec<RowGroupMeta>,
) {
    let total = batch.num_rows();
    let mut start = 0usize;
    let mut emitted = false;
    while start < total || (total == 0 && force_group && !emitted) {
        let end = (start + rows_per_group).min(total);
        let rg = batch.slice(start, end);
        let mut chunks = Vec::with_capacity(rg.columns.len());
        for col in &rg.columns {
            let (data, encoding, stats) = encode_column(col);
            chunks.push(ChunkMeta {
                offset: file.len() as u64,
                len: data.len() as u64,
                encoding,
                rows: rg.num_rows() as u32,
                stats,
            });
            file.extend_from_slice(&data);
        }
        row_groups.push(RowGroupMeta {
            rows: rg.num_rows() as u32,
            chunks,
        });
        emitted = true;
        if total == 0 {
            break;
        }
        start = end;
    }
}

/// Serialise the footer body: schema plus row-group directory.
fn encode_footer(schema: &Schema, row_groups: &[RowGroupMeta]) -> Vec<u8> {
    let mut footer = Vec::new();
    put_u32(&mut footer, schema.len() as u32);
    for f in &schema.fields {
        put_u32(&mut footer, f.name.len() as u32);
        footer.extend_from_slice(f.name.as_bytes());
        footer.push(match f.data_type {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Utf8 => 2,
            DataType::Bool => 3,
            DataType::Date => 4,
        });
    }
    put_u32(&mut footer, row_groups.len() as u32);
    for rg in row_groups {
        put_u32(&mut footer, rg.rows);
        put_u32(&mut footer, rg.chunks.len() as u32);
        for c in &rg.chunks {
            put_u64(&mut footer, c.offset);
            put_u64(&mut footer, c.len);
            footer.push(c.encoding as u8);
            put_u32(&mut footer, c.rows);
            put_stats(&mut footer, &c.stats);
        }
    }
    footer
}

/// Append footer + trailer to a file body.
fn seal(mut file: Vec<u8>, footer: Vec<u8>) -> Bytes {
    let footer_len = footer.len() as u32;
    file.extend_from_slice(&footer);
    file.extend_from_slice(&footer_len.to_le_bytes());
    file.extend_from_slice(MAGIC);
    Bytes::from(file)
}

/// Encode batches into an SPF file, re-chunking to `rows_per_group`.
pub fn write(batches: &[Batch], rows_per_group: usize) -> Bytes {
    assert!(rows_per_group > 0, "rows_per_group must be positive");
    let schema = batches
        .first()
        .map(|b| Rc::clone(&b.schema))
        .expect("write needs at least one batch");
    let all = Batch::concat(batches);
    let mut file = Vec::new();
    file.extend_from_slice(MAGIC);
    let mut row_groups = Vec::new();
    encode_row_groups(&mut file, &all, rows_per_group, true, &mut row_groups);
    let footer = encode_footer(&schema, &row_groups);
    seal(file, footer)
}

/// Encode a bucket-indexed shuffle segment: one SPF object multiplexing
/// several buckets, each laid out as its own contiguous run of row groups,
/// with a versioned per-bucket directory appended inside the footer.
///
/// A consumer that parses the footer via [`parse_footer_indexed`] can
/// fetch exactly its bucket's byte range; a consumer on the plain
/// [`read_all`] path decodes every bucket's row groups in file order
/// (the index section is ignored as trailing footer bytes). Empty buckets
/// occupy zero row groups and zero data bytes.
pub fn write_bucketed(buckets: &[Batch], rows_per_group: usize) -> Bytes {
    write_bucketed_rotated(buckets, rows_per_group, 0)
}

/// [`write_bucketed`] with the file order of the buckets rotated left by
/// `rotation` positions (bucket `rotation` is written first). The bucket
/// directory is still indexed by bucket id, so readers are oblivious to
/// the layout — but a writer fleet that rotates by its own fragment id
/// spreads each consumer's bucket across file positions, so no consumer
/// sits at the front of *every* segment and suffix reads stay balanced.
pub fn write_bucketed_rotated(buckets: &[Batch], rows_per_group: usize, rotation: usize) -> Bytes {
    assert!(rows_per_group > 0, "rows_per_group must be positive");
    let schema = buckets
        .first()
        .map(|b| Rc::clone(&b.schema))
        .expect("write_bucketed needs at least one bucket");
    let n = buckets.len();
    let mut file = Vec::new();
    file.extend_from_slice(MAGIC);
    let mut row_groups = Vec::new();
    let mut entries: Vec<Option<BucketEntry>> = vec![None; n];
    for position in 0..n {
        let id = (position + rotation) % n;
        let bucket = &buckets[id];
        let first_group = row_groups.len() as u32;
        let byte_start = file.len() as u64;
        encode_row_groups(&mut file, bucket, rows_per_group, false, &mut row_groups);
        entries[id] = Some(BucketEntry {
            rows: bucket.num_rows() as u64,
            first_group,
            n_groups: row_groups.len() as u32 - first_group,
            byte_start,
            byte_end: file.len() as u64,
        });
    }
    let entries: Vec<BucketEntry> = entries.into_iter().map(|e| e.expect("filled")).collect();
    let mut footer = encode_footer(&schema, &row_groups);
    put_u32(&mut footer, BUCKET_INDEX_MAGIC);
    footer.push(BUCKET_INDEX_VERSION);
    put_u32(&mut footer, entries.len() as u32);
    for e in &entries {
        put_u64(&mut footer, e.rows);
        put_u32(&mut footer, e.first_group);
        put_u32(&mut footer, e.n_groups);
        put_u64(&mut footer, e.byte_start);
        put_u64(&mut footer, e.byte_end);
    }
    seal(file, footer)
}

/// Parse the footer given the full file (local path).
pub fn read_footer(file: &[u8]) -> Result<Footer, SpfError> {
    if file.len() < 16 || &file[..4] != MAGIC || &file[file.len() - 4..] != MAGIC {
        return Err(SpfError::NotAnSpfFile);
    }
    let footer_len = u32::from_le_bytes(
        file[file.len() - 8..file.len() - 4]
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    let footer_end = file.len() - 8;
    let footer_start = footer_end
        .checked_sub(footer_len)
        .ok_or(SpfError::Corrupt("footer length exceeds file"))?;
    parse_footer(&file[footer_start..footer_end])
}

/// The byte range `[start, len)` of the footer, derived from the 8-byte
/// trailer — what a remote reader fetches second.
pub fn footer_range(trailer: &[u8], file_len: u64) -> Result<(u64, u64), SpfError> {
    if trailer.len() != TRAILER_LEN as usize || &trailer[4..] != MAGIC {
        return Err(SpfError::NotAnSpfFile);
    }
    let footer_len = u32::from_le_bytes(trailer[..4].try_into().expect("4 bytes")) as u64;
    let start = file_len
        .checked_sub(TRAILER_LEN + footer_len)
        .ok_or(SpfError::Corrupt("footer length exceeds file"))?;
    Ok((start, footer_len))
}

/// Parse footer bytes (as fetched via [`footer_range`]). Stops after the
/// row-group directory; trailing section bytes (e.g. a bucket index) are
/// ignored.
pub fn parse_footer(buf: &[u8]) -> Result<Footer, SpfError> {
    let mut cur = Cursor::new(buf);
    parse_footer_body(&mut cur)
}

/// Parse footer bytes together with the bucket-index section, when one is
/// present ([`write_bucketed`] objects carry it; plain [`write`] objects
/// return `None`).
pub fn parse_footer_indexed(buf: &[u8]) -> Result<(Footer, Option<BucketIndex>), SpfError> {
    let mut cur = Cursor::new(buf);
    let footer = parse_footer_body(&mut cur)?;
    // Anything other than a well-formed, version-compatible index section
    // degrades to "no index": older/foreign writers may append sections
    // this reader does not know.
    let index = (|| {
        let mut cur = cur;
        if cur.u32().ok()? != BUCKET_INDEX_MAGIC || cur.u8().ok()? != BUCKET_INDEX_VERSION {
            return None;
        }
        let n = cur.u32().ok()? as usize;
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            let e = BucketEntry {
                rows: cur.u64().ok()?,
                first_group: cur.u32().ok()?,
                n_groups: cur.u32().ok()?,
                byte_start: cur.u64().ok()?,
                byte_end: cur.u64().ok()?,
            };
            let end = e.first_group.checked_add(e.n_groups)? as usize;
            if end > footer.row_groups.len() || e.byte_start > e.byte_end {
                return None;
            }
            buckets.push(e);
        }
        Some(BucketIndex { buckets })
    })();
    Ok((footer, index))
}

fn parse_footer_body(cur: &mut Cursor<'_>) -> Result<Footer, SpfError> {
    let n_fields = cur.u32()? as usize;
    let mut fields = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let name = cur.string()?;
        let dtype = match cur.u8()? {
            0 => DataType::Int64,
            1 => DataType::Float64,
            2 => DataType::Utf8,
            3 => DataType::Bool,
            4 => DataType::Date,
            _ => return Err(SpfError::Corrupt("bad data type")),
        };
        fields.push(Field {
            name,
            data_type: dtype,
        });
    }
    let n_groups = cur.u32()? as usize;
    let mut row_groups = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        let rows = cur.u32()?;
        let n_chunks = cur.u32()? as usize;
        if n_chunks != n_fields {
            return Err(SpfError::Corrupt("chunk count != field count"));
        }
        let mut chunks = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            chunks.push(ChunkMeta {
                offset: cur.u64()?,
                len: cur.u64()?,
                encoding: Encoding::from_u8(cur.u8()?)?,
                rows: cur.u32()?,
                stats: read_stats(cur)?,
            });
        }
        row_groups.push(RowGroupMeta { rows, chunks });
    }
    Ok(Footer {
        schema: Schema::new(fields),
        row_groups,
    })
}

/// Decode one column chunk fetched from `[meta.offset, meta.len)`.
pub fn decode_chunk(meta: &ChunkMeta, data: &[u8]) -> Result<Column, SpfError> {
    if data.len() as u64 != meta.len {
        return Err(SpfError::Corrupt("chunk length mismatch"));
    }
    decode_column(data, meta.encoding, meta.rows as usize)
}

/// Decode one column chunk like [`decode_chunk`], additionally surfacing
/// the chunk's string dictionary, sorted and deduplicated, when the chunk
/// is dictionary-encoded **and** every dictionary entry is referenced by
/// at least one row. Under that condition the returned dictionary equals
/// the sorted distinct values of the decoded column, so a consumer can
/// hand it straight to an engine-side dictionary cache without re-sorting
/// the rows. (Our writer only emits referenced entries; the reference
/// check guards against foreign files.)
pub fn decode_chunk_with_dict(
    meta: &ChunkMeta,
    data: &[u8],
) -> Result<(Column, Option<Vec<String>>), SpfError> {
    if data.len() as u64 != meta.len {
        return Err(SpfError::Corrupt("chunk length mismatch"));
    }
    if meta.encoding != Encoding::Utf8Dict {
        return Ok((
            decode_column(data, meta.encoding, meta.rows as usize)?,
            None,
        ));
    }
    let rows = meta.rows as usize;
    let mut cur = Cursor::new(data);
    let n = cur.u32()? as usize;
    let mut dict = Vec::with_capacity(n);
    for _ in 0..n {
        dict.push(cur.string()?);
    }
    let mut referenced = vec![false; n];
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let idx = cur.varint()? as usize;
        let s = dict
            .get(idx)
            .ok_or(SpfError::Corrupt("dict index out of range"))?;
        referenced[idx] = true;
        out.push(s.clone());
    }
    let sorted = referenced.iter().all(|&r| r).then(|| {
        let mut d = dict;
        d.sort_unstable();
        d.dedup();
        d
    });
    Ok((Column::Utf8(out), sorted))
}

/// Decode one bucket of a bucket-indexed segment from its byte range.
/// `data` must hold exactly the file bytes
/// `[entry.byte_start, entry.byte_end)` of `bucket`'s entry — what a
/// remote consumer fetches with a single ranged GET. Returns one batch
/// per row group (none for an empty bucket), restricted to `projection`.
pub fn read_bucket(
    footer: &Footer,
    index: &BucketIndex,
    bucket: usize,
    data: &[u8],
    projection: Option<&[String]>,
) -> Result<Vec<Batch>, SpfError> {
    let entry = index
        .buckets
        .get(bucket)
        .ok_or(SpfError::Corrupt("bucket index out of range"))?;
    if data.len() as u64 != entry.byte_end - entry.byte_start {
        return Err(SpfError::Corrupt("bucket range length mismatch"));
    }
    let indices: Vec<usize> = match projection {
        None => (0..footer.schema.len()).collect(),
        Some(names) => names
            .iter()
            .map(|n| {
                footer
                    .schema
                    .index_of(n)
                    .ok_or_else(|| SpfError::UnknownColumn(n.clone()))
            })
            .collect::<Result<_, _>>()?,
    };
    let mut batches = Vec::with_capacity(entry.n_groups as usize);
    for rg in index.row_groups(footer, bucket) {
        let mut columns = Vec::with_capacity(indices.len());
        for &i in &indices {
            let c = &rg.chunks[i];
            let start = c
                .offset
                .checked_sub(entry.byte_start)
                .ok_or(SpfError::Corrupt("chunk outside bucket range"))?
                as usize;
            let end = start + c.len as usize;
            if end > data.len() {
                return Err(SpfError::Corrupt("chunk outside bucket range"));
            }
            columns.push(decode_chunk(c, &data[start..end])?);
        }
        batches.push(Batch::new(footer.schema.project(&indices), columns));
    }
    Ok(batches)
}

/// Read one row group from a local file, restricted to `projection`
/// (field names). `None` means all columns.
pub fn read_row_group(
    file: &[u8],
    footer: &Footer,
    rg_idx: usize,
    projection: Option<&[String]>,
) -> Result<Batch, SpfError> {
    let rg = footer
        .row_groups
        .get(rg_idx)
        .ok_or(SpfError::Corrupt("row group index out of range"))?;
    let indices: Vec<usize> = match projection {
        None => (0..footer.schema.len()).collect(),
        Some(names) => names
            .iter()
            .map(|n| {
                footer
                    .schema
                    .index_of(n)
                    .ok_or_else(|| SpfError::UnknownColumn(n.clone()))
            })
            .collect::<Result<_, _>>()?,
    };
    let mut columns = Vec::with_capacity(indices.len());
    for &i in &indices {
        let c = &rg.chunks[i];
        let start = c.offset as usize;
        let end = start + c.len as usize;
        if end > file.len() {
            return Err(SpfError::Corrupt("chunk out of file bounds"));
        }
        columns.push(decode_chunk(c, &file[start..end])?);
    }
    Ok(Batch::new(footer.schema.project(&indices), columns))
}

/// Read the whole file into batches (one per row group).
pub fn read_all(file: &[u8], projection: Option<&[String]>) -> Result<Vec<Batch>, SpfError> {
    let footer = read_footer(file)?;
    (0..footer.row_groups.len())
        .map(|i| read_row_group(file, &footer, i, projection))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{date, Field};
    use proptest::prelude::*;

    fn sample_batch(n: usize) -> Batch {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
            Field::new("tag", DataType::Utf8),
            Field::new("ok", DataType::Bool),
            Field::new("d", DataType::Date),
        ]);
        Batch::new(
            schema,
            vec![
                Column::Int64((0..n as i64).map(|i| i * 37 - 11).collect()),
                Column::Float64((0..n).map(|i| i as f64 * 0.5 - 3.0).collect()),
                Column::Utf8((0..n).map(|i| format!("tag{}", i % 5)).collect()),
                Column::Bool((0..n).map(|i| i % 3 == 0).collect()),
                Column::Int64(
                    (0..n as i64)
                        .map(|i| date::from_ymd(1995, 1, 1) + i)
                        .collect(),
                ),
            ],
        )
    }

    #[test]
    fn roundtrip_all_types() {
        let batch = sample_batch(1000);
        let file = write(std::slice::from_ref(&batch), 256);
        let out = read_all(&file, None).unwrap();
        let merged = Batch::concat(&out);
        assert_eq!(merged.columns, batch.columns);
        assert_eq!(out.len(), 4, "1000 rows / 256 per group");
    }

    #[test]
    fn projection_reads_only_requested_columns() {
        let batch = sample_batch(100);
        let file = write(std::slice::from_ref(&batch), 64);
        let out = read_all(&file, Some(&["tag".to_string(), "k".to_string()])).unwrap();
        assert_eq!(out[0].schema.fields.len(), 2);
        assert_eq!(out[0].schema.fields[0].name, "tag");
        assert_eq!(
            Batch::concat(&out).column("k").as_i64(),
            batch.column("k").as_i64()
        );
    }

    #[test]
    fn unknown_projection_column_errors() {
        let file = write(&[sample_batch(10)], 10);
        assert!(matches!(
            read_all(&file, Some(&["zzz".to_string()])),
            Err(SpfError::UnknownColumn(_))
        ));
    }

    #[test]
    fn zone_maps_present_and_correct() {
        let file = write(&[sample_batch(100)], 50);
        let footer = read_footer(&file).unwrap();
        assert_eq!(footer.row_groups.len(), 2);
        let c0 = &footer.row_groups[0].chunks[0];
        let stats = c0.stats.as_ref().unwrap();
        assert_eq!(stats.min, Value::Int64(-11));
        assert_eq!(stats.max, Value::Int64(49 * 37 - 11));
        // Second group starts where the first ended.
        let c1 = &footer.row_groups[1].chunks[0];
        assert_eq!(c1.stats.as_ref().unwrap().min, Value::Int64(50 * 37 - 11));
    }

    #[test]
    fn remote_read_protocol_with_ranges() {
        // Simulate the three-request remote pattern.
        let batch = sample_batch(300);
        let file = write(std::slice::from_ref(&batch), 100);
        let file_len = file.len() as u64;
        let trailer = &file[file.len() - 8..];
        let (fstart, flen) = footer_range(trailer, file_len).unwrap();
        let footer = parse_footer(&file[fstart as usize..(fstart + flen) as usize]).unwrap();
        assert_eq!(footer.total_rows(), 300);
        // Fetch one chunk by range and decode it.
        let c = &footer.row_groups[1].chunks[1];
        let chunk = &file[c.offset as usize..(c.offset + c.len) as usize];
        let col = decode_chunk(c, chunk).unwrap();
        assert_eq!(col.as_f64(), batch.column("v").slice(100, 200).as_f64());
    }

    #[test]
    fn dictionary_encoding_kicks_in_for_low_cardinality() {
        let n = 1000;
        let schema = Schema::new(vec![Field::new("mode", DataType::Utf8)]);
        let low = Batch::new(
            Rc::clone(&schema),
            vec![Column::Utf8(
                (0..n).map(|i| format!("M{}", i % 4)).collect(),
            )],
        );
        let high = Batch::new(
            schema,
            vec![Column::Utf8(
                (0..n).map(|i| format!("unique-{i}")).collect(),
            )],
        );
        let f_low = write(&[low], n);
        let f_high = write(&[high], n);
        let foot_low = read_footer(&f_low).unwrap();
        let foot_high = read_footer(&f_high).unwrap();
        assert_eq!(
            foot_low.row_groups[0].chunks[0].encoding,
            Encoding::Utf8Dict
        );
        assert_eq!(
            foot_high.row_groups[0].chunks[0].encoding,
            Encoding::Utf8Plain
        );
        assert!(f_low.len() * 4 < f_high.len(), "dict compresses");
    }

    #[test]
    fn corrupt_files_rejected() {
        assert_eq!(read_footer(b"hello").unwrap_err(), SpfError::NotAnSpfFile);
        let file = write(&[sample_batch(10)], 10);
        let mut broken = file.to_vec();
        let len = broken.len();
        broken[len - 6] = 0xff; // mangle footer length
        assert!(read_footer(&broken).is_err());
    }

    /// Reference linear-scan dictionary build (the pre-optimisation code):
    /// the map-based build must emit byte-identical chunks.
    fn encode_utf8_reference(v: &[String]) -> Vec<u8> {
        let mut dict: Vec<&str> = Vec::new();
        let mut distinct_small = true;
        for s in v {
            if !dict.contains(&s.as_str()) {
                dict.push(s);
                if dict.len() > 256 || dict.len() * 2 > v.len().max(8) {
                    distinct_small = false;
                    break;
                }
            }
        }
        let mut out = Vec::new();
        if distinct_small && !v.is_empty() {
            put_u32(&mut out, dict.len() as u32);
            for s in &dict {
                put_u32(&mut out, s.len() as u32);
                out.extend_from_slice(s.as_bytes());
            }
            for s in v {
                let idx = dict.iter().position(|d| d == s).expect("in dict") as u64;
                put_varint(&mut out, idx);
            }
        } else {
            for s in v {
                put_u32(&mut out, s.len() as u32);
                out.extend_from_slice(s.as_bytes());
            }
        }
        out
    }

    #[test]
    fn dict_build_bytes_match_linear_reference() {
        let cases: Vec<Vec<String>> = vec![
            vec![],
            vec!["a".into()],
            (0..1000).map(|i| format!("M{}", i % 4)).collect(),
            (0..1000).map(|i| format!("unique-{i}")).collect(),
            // Right at the cardinality threshold.
            (0..600).map(|i| format!("t{}", i % 256)).collect(),
            (0..600).map(|i| format!("t{}", i % 257)).collect(),
            // First occurrences out of sorted order.
            vec!["z".into(), "a".into(), "m".into(), "a".into(), "z".into()],
        ];
        for v in cases {
            let (got, _, _) = encode_column(&Column::Utf8(v.clone()));
            assert_eq!(got, encode_utf8_reference(&v), "bytes diverge for {v:?}");
        }
    }

    fn buckets_fixture() -> Vec<Batch> {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("tag", DataType::Utf8),
            Field::new("ok", DataType::Bool),
        ]);
        let mk = |rows: std::ops::Range<i64>| {
            Batch::new(
                Rc::clone(&schema),
                vec![
                    Column::Int64(rows.clone().collect()),
                    Column::Utf8(rows.clone().map(|i| format!("t{}", i % 3)).collect()),
                    Column::Bool(rows.map(|i| i % 2 == 0).collect()),
                ],
            )
        };
        vec![mk(0..40), mk(40..40), mk(40..41), mk(41..120)]
    }

    #[test]
    fn bucketed_segment_round_trips_per_bucket() {
        let buckets = buckets_fixture();
        let file = write_bucketed(&buckets, 16);
        let (fstart, flen) = footer_range(
            &file[file.len() - TRAILER_LEN as usize..],
            file.len() as u64,
        )
        .unwrap();
        let (footer, index) =
            parse_footer_indexed(&file[fstart as usize..(fstart + flen) as usize]).unwrap();
        let index = index.expect("bucketed writer emits an index");
        assert_eq!(index.buckets.len(), 4);
        assert_eq!(index.buckets[1].rows, 0);
        assert_eq!(index.buckets[1].n_groups, 0);
        assert_eq!(index.buckets[1].byte_start, index.buckets[1].byte_end);
        for (b, bucket) in buckets.iter().enumerate() {
            let e = &index.buckets[b];
            assert_eq!(e.rows, bucket.num_rows() as u64);
            let range = &file[e.byte_start as usize..e.byte_end as usize];
            let got = read_bucket(&footer, &index, b, range, None).unwrap();
            let merged = if got.is_empty() {
                Batch::empty(Rc::clone(&footer.schema))
            } else {
                Batch::concat(&got)
            };
            assert_eq!(merged.columns, bucket.columns, "bucket {b}");
        }
    }

    #[test]
    fn rotated_segment_round_trips_per_bucket() {
        let buckets = buckets_fixture();
        for rotation in 0..buckets.len() {
            let file = write_bucketed_rotated(&buckets, 16, rotation);
            let (fstart, flen) = footer_range(
                &file[file.len() - TRAILER_LEN as usize..],
                file.len() as u64,
            )
            .unwrap();
            let (footer, index) =
                parse_footer_indexed(&file[fstart as usize..(fstart + flen) as usize]).unwrap();
            let index = index.expect("bucketed writer emits an index");
            // The directory stays indexed by bucket id regardless of the
            // file order, so readers are oblivious to the rotation.
            for (b, bucket) in buckets.iter().enumerate() {
                let e = &index.buckets[b];
                assert_eq!(e.rows, bucket.num_rows() as u64);
                let range = &file[e.byte_start as usize..e.byte_end as usize];
                let got = read_bucket(&footer, &index, b, range, None).unwrap();
                let merged = if got.is_empty() {
                    Batch::empty(Rc::clone(&footer.schema))
                } else {
                    Batch::concat(&got)
                };
                assert_eq!(merged.columns, bucket.columns, "bucket {b} rot {rotation}");
            }
            // Bucket `rotation` is written first.
            let first_data_byte = MAGIC.len() as u64;
            assert_eq!(index.buckets[rotation].byte_start, first_data_byte);
        }
    }

    #[test]
    fn bucketed_segment_readable_by_plain_reader() {
        // A pre-index reader must decode every bucket, in bucket order:
        // the index is trailing footer bytes it never parses.
        let buckets = buckets_fixture();
        let file = write_bucketed(&buckets, 16);
        let all = read_all(&file, None).unwrap();
        let merged = Batch::concat(&all);
        let expected = Batch::concat(&buckets);
        assert_eq!(merged.columns, expected.columns);
        // And the indexed parse agrees with the plain parse on the
        // row-group directory.
        let footer = read_footer(&file).unwrap();
        assert_eq!(
            footer.total_rows(),
            buckets.iter().map(|b| b.num_rows() as u64).sum::<u64>()
        );
    }

    #[test]
    fn plain_files_parse_with_no_index() {
        let file = write(&[sample_batch(50)], 20);
        let (fstart, flen) = footer_range(
            &file[file.len() - TRAILER_LEN as usize..],
            file.len() as u64,
        )
        .unwrap();
        let (footer, index) =
            parse_footer_indexed(&file[fstart as usize..(fstart + flen) as usize]).unwrap();
        assert!(index.is_none());
        assert_eq!(footer.total_rows(), 50);
    }

    #[test]
    fn bucket_projection_restricts_columns() {
        let buckets = buckets_fixture();
        let file = write_bucketed(&buckets, 16);
        let footer = read_footer(&file).unwrap();
        let (_, index) = parse_footer_indexed(
            &footer_range(&file[file.len() - 8..], file.len() as u64)
                .map(|(s, l)| &file[s as usize..(s + l) as usize])
                .unwrap(),
        )
        .unwrap();
        let index = index.unwrap();
        let e = &index.buckets[3];
        let range = &file[e.byte_start as usize..e.byte_end as usize];
        let got = read_bucket(&footer, &index, 3, range, Some(&["tag".to_string()])).unwrap();
        assert_eq!(got[0].schema.fields.len(), 1);
        assert_eq!(
            Batch::concat(&got).column("tag").as_str(),
            buckets[3].column("tag").as_str()
        );
    }

    #[test]
    fn decode_chunk_with_dict_surfaces_sorted_distinct() {
        let schema = Schema::new(vec![Field::new("m", DataType::Utf8)]);
        let vals: Vec<String> = ["z", "b", "z", "a", "b", "z"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let batch = Batch::new(schema, vec![Column::Utf8(vals.clone())]);
        let file = write(&[batch], 100);
        let footer = read_footer(&file).unwrap();
        let c = &footer.row_groups[0].chunks[0];
        assert_eq!(c.encoding, Encoding::Utf8Dict);
        let data = &file[c.offset as usize..(c.offset + c.len) as usize];
        let (col, dict) = decode_chunk_with_dict(c, data).unwrap();
        assert_eq!(col.as_str(), &vals[..]);
        assert_eq!(
            dict.unwrap(),
            vec!["a".to_string(), "b".to_string(), "z".to_string()]
        );
        // Non-dictionary chunks surface no dictionary.
        let ints = Batch::new(
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            vec![Column::Int64(vec![1, 2, 3])],
        );
        let f2 = write(&[ints], 10);
        let foot2 = read_footer(&f2).unwrap();
        let c2 = &foot2.row_groups[0].chunks[0];
        let (_, none) =
            decode_chunk_with_dict(c2, &f2[c2.offset as usize..(c2.offset + c2.len) as usize])
                .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn empty_batch_roundtrips() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let file = write(&[Batch::empty(schema)], 10);
        let out = read_all(&file, None).unwrap();
        assert_eq!(out.iter().map(Batch::num_rows).sum::<usize>(), 0);
    }

    proptest! {
        #[test]
        fn prop_int_roundtrip(values in prop::collection::vec(any::<i64>(), 0..300), group in 1usize..100) {
            let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
            let batch = Batch::new(schema, vec![Column::Int64(values.clone())]);
            let file = write(&[batch], group);
            let out = Batch::concat(&read_all(&file, None).unwrap());
            prop_assert_eq!(out.column("x").as_i64(), &values[..]);
        }

        #[test]
        fn prop_string_roundtrip(values in prop::collection::vec("[a-z]{0,12}", 0..200)) {
            let schema = Schema::new(vec![Field::new("s", DataType::Utf8)]);
            let batch = Batch::new(schema, vec![Column::Utf8(values.clone())]);
            let file = write(&[batch], 64);
            let out = Batch::concat(&read_all(&file, None).unwrap());
            prop_assert_eq!(out.column("s").as_str(), &values[..]);
        }

        #[test]
        fn prop_float_roundtrip_bits(values in prop::collection::vec(any::<f64>(), 0..200)) {
            let schema = Schema::new(vec![Field::new("f", DataType::Float64)]);
            let batch = Batch::new(schema, vec![Column::Float64(values.clone())]);
            let file = write(&[batch], 50);
            let out = Batch::concat(&read_all(&file, None).unwrap());
            let got = out.column("f").as_f64();
            prop_assert_eq!(got.len(), values.len());
            for (a, b) in got.iter().zip(&values) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// Satellite: bucket-indexed round-trip. Per-bucket range reads
        /// (footer parse → byte-range slice → `read_bucket`) must equal
        /// the whole-object `read_all` decode regrouped per bucket,
        /// bitwise, across empty buckets, single-row buckets, and the
        /// dictionary / delta / bitmap encodings.
        #[test]
        fn prop_bucketed_range_reads_equal_whole_object(
            sizes in prop::collection::vec(0usize..25, 1..6),
            group in 1usize..40,
            cardinality in 1u64..40,
        ) {
            let schema = Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("tag", DataType::Utf8),
                Field::new("ok", DataType::Bool),
            ]);
            let mut next = 0i64;
            let buckets: Vec<Batch> = sizes
                .iter()
                .map(|&n| {
                    let start = next;
                    next += n as i64;
                    Batch::new(
                        Rc::clone(&schema),
                        vec![
                            Column::Int64((start..start + n as i64).collect()),
                            Column::Utf8(
                                (start..start + n as i64)
                                    .map(|i| format!("t{}", i as u64 % cardinality))
                                    .collect(),
                            ),
                            Column::Bool((start..start + n as i64).map(|i| i % 2 == 0).collect()),
                        ],
                    )
                })
                .collect();
            let file = write_bucketed(&buckets, group);
            let trailer = &file[file.len() - TRAILER_LEN as usize..];
            let (fstart, flen) = footer_range(trailer, file.len() as u64).unwrap();
            let (footer, index) =
                parse_footer_indexed(&file[fstart as usize..(fstart + flen) as usize]).unwrap();
            let index = index.expect("bucketed file carries an index");
            prop_assert_eq!(index.buckets.len(), sizes.len());
            // Whole-object decode, regrouped by the index's row-group spans.
            let all = read_all(&file, None).unwrap();
            for (b, bucket) in buckets.iter().enumerate() {
                let e = &index.buckets[b];
                prop_assert_eq!(e.rows, bucket.num_rows() as u64);
                let range = &file[e.byte_start as usize..e.byte_end as usize];
                let ranged = read_bucket(&footer, &index, b, range, None).unwrap();
                let whole =
                    &all[e.first_group as usize..(e.first_group + e.n_groups) as usize];
                prop_assert_eq!(ranged.len(), whole.len());
                for (r, w) in ranged.iter().zip(whole) {
                    prop_assert_eq!(&r.columns, &w.columns);
                }
                let merged = if ranged.is_empty() {
                    Batch::empty(Rc::clone(&footer.schema))
                } else {
                    Batch::concat(&ranged)
                };
                prop_assert_eq!(&merged.columns, &bucket.columns);
            }
        }

        #[test]
        fn prop_zone_maps_bound_all_values(values in prop::collection::vec(-1000i64..1000, 1..200)) {
            let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
            let batch = Batch::new(schema, vec![Column::Int64(values.clone())]);
            let file = write(&[batch], 32);
            let footer = read_footer(&file).unwrap();
            let mut offset = 0usize;
            for rg in &footer.row_groups {
                let stats = rg.chunks[0].stats.as_ref().unwrap();
                let Value::Int64(lo) = &stats.min else {
                    panic!("int stats expected");
                };
                let Value::Int64(hi) = &stats.max else {
                    panic!("int stats expected");
                };
                for &v in &values[offset..offset + rg.rows as usize] {
                    prop_assert!(*lo <= v && v <= *hi);
                }
                offset += rg.rows as usize;
            }
        }
    }
}
