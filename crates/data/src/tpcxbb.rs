//! Deterministic TPCx-BB data generation for query Q3 (clickstream
//! analysis).
//!
//! TPCx-BB Q3 asks, for a given item category, which items users viewed in
//! their last clicks before purchasing an item — an I/O-bound,
//! MapReduce-style sessionisation over `web_clickstreams` joined with
//! `item`. We generate the two tables with the query-relevant columns:
//! users produce click sessions ordered by time, and a fraction of clicks
//! carry a sales key (a purchase).

use crate::columnar::{Batch, Column, DataType, Field, Schema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// Item categories (subset of the official 10).
pub const CATEGORIES: [&str; 8] = [
    "Books",
    "Electronics",
    "Home & Kitchen",
    "Toys & Games",
    "Sports",
    "Clothing",
    "Music",
    "Jewelry",
];

/// WEB_CLICKSTREAMS schema (query-relevant subset).
pub fn clickstreams_schema() -> Rc<Schema> {
    Schema::new(vec![
        Field::new("wcs_user_sk", DataType::Int64),
        Field::new("wcs_click_date_sk", DataType::Date),
        Field::new("wcs_click_time_sk", DataType::Int64),
        Field::new("wcs_item_sk", DataType::Int64),
        // 0 encodes NULL (no purchase on this click).
        Field::new("wcs_sales_sk", DataType::Int64),
    ])
}

/// ITEM schema (query-relevant subset).
pub fn item_schema() -> Rc<Schema> {
    Schema::new(vec![
        Field::new("i_item_sk", DataType::Int64),
        Field::new("i_category_id", DataType::Int64),
        Field::new("i_category", DataType::Utf8),
    ])
}

/// Items at a scale factor.
pub fn item_rows(sf: f64) -> u64 {
    ((sf * 1_000.0).round() as u64).clamp(80, 400_000)
}

/// Clickstream rows at a scale factor (~6.6B at SF1000).
pub fn clickstream_rows(sf: f64) -> u64 {
    (sf * 6_600_000.0).round() as u64
}

/// Both tables, generated together so item keys agree.
pub struct TpcxBbTables {
    /// The WEB_CLICKSTREAMS table.
    pub clickstreams: Batch,
    /// The ITEM table.
    pub item: Batch,
}

/// Generate ITEM and WEB_CLICKSTREAMS at scale factor `sf`.
pub fn generate(sf: f64, seed: u64) -> TpcxBbTables {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6262_5133);
    let n_items = item_rows(sf) as i64;
    let n_clicks = clickstream_rows(sf) as usize;

    // ITEM.
    let mut i_item_sk = Vec::with_capacity(n_items as usize);
    let mut i_category_id = Vec::with_capacity(n_items as usize);
    let mut i_category: Vec<String> = Vec::with_capacity(n_items as usize);
    for sk in 1..=n_items {
        let cat = rng.gen_range(0..CATEGORIES.len());
        i_item_sk.push(sk);
        i_category_id.push(cat as i64 + 1);
        i_category.push(CATEGORIES[cat].to_string());
    }

    // WEB_CLICKSTREAMS: users click in sessions; ~4% of clicks purchase.
    let n_users = ((n_clicks / 50).max(4)) as i64;
    let mut wcs_user = Vec::with_capacity(n_clicks);
    let mut wcs_date = Vec::with_capacity(n_clicks);
    let mut wcs_time = Vec::with_capacity(n_clicks);
    let mut wcs_item = Vec::with_capacity(n_clicks);
    let mut wcs_sales = Vec::with_capacity(n_clicks);
    let mut next_sales_sk = 1i64;

    let mut produced = 0usize;
    while produced < n_clicks {
        let user = rng.gen_range(1..=n_users);
        let date = crate::columnar::date::from_ymd(2023, 1, 1) + rng.gen_range(0..365i64);
        let mut time = rng.gen_range(0..80_000i64);
        let session_len = rng.gen_range(3..=20usize).min(n_clicks - produced);
        for _ in 0..session_len {
            time += rng.gen_range(5..120i64);
            let item = rng.gen_range(1..=n_items);
            let sales = if rng.gen_bool(0.04) {
                let sk = next_sales_sk;
                next_sales_sk += 1;
                sk
            } else {
                0
            };
            wcs_user.push(user);
            wcs_date.push(date);
            wcs_time.push(time);
            wcs_item.push(item);
            wcs_sales.push(sales);
            produced += 1;
        }
    }

    TpcxBbTables {
        clickstreams: Batch::new(
            clickstreams_schema(),
            vec![
                Column::Int64(wcs_user),
                Column::Int64(wcs_date),
                Column::Int64(wcs_time),
                Column::Int64(wcs_item),
                Column::Int64(wcs_sales),
            ],
        ),
        item: Batch::new(
            item_schema(),
            vec![
                Column::Int64(i_item_sk),
                Column::Int64(i_category_id),
                Column::Utf8(i_category),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale() {
        let t = generate(0.01, 1);
        assert_eq!(t.clickstreams.num_rows(), 66_000);
        assert_eq!(t.item.num_rows(), 80); // clamped minimum
        let big = generate(0.5, 1);
        assert_eq!(big.item.num_rows(), 500);
    }

    #[test]
    fn determinism() {
        let a = generate(0.01, 5);
        let b = generate(0.01, 5);
        assert_eq!(a.clickstreams.columns, b.clickstreams.columns);
        assert_eq!(a.item.columns, b.item.columns);
    }

    #[test]
    fn purchases_are_a_small_fraction_with_unique_keys() {
        let t = generate(0.05, 3);
        let sales = t.clickstreams.column("wcs_sales_sk").as_i64();
        let purchases: Vec<i64> = sales.iter().copied().filter(|&s| s != 0).collect();
        let frac = purchases.len() as f64 / sales.len() as f64;
        assert!(frac > 0.02 && frac < 0.07, "purchase fraction {frac}");
        let unique: std::collections::HashSet<i64> = purchases.iter().copied().collect();
        assert_eq!(unique.len(), purchases.len());
    }

    #[test]
    fn clicks_reference_valid_items() {
        let t = generate(0.02, 4);
        let n_items = t.item.num_rows() as i64;
        for &i in t.clickstreams.column("wcs_item_sk").as_i64() {
            assert!(i >= 1 && i <= n_items);
        }
    }

    #[test]
    fn every_category_is_populated() {
        let t = generate(0.1, 6);
        let cats: std::collections::HashSet<&str> = t
            .item
            .column("i_category")
            .as_str()
            .iter()
            .map(String::as_str)
            .collect();
        assert_eq!(cats.len(), CATEGORIES.len());
    }
}
