//! Columnar in-memory representation: schemas, columns, record batches.
//!
//! The engine's operators are vectorised over [`Batch`]es (the paper's
//! workers "use a vectorized execution model"). Dates are stored as days
//! since the Unix epoch in `Int64` columns.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::rc::Rc;

/// Logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Boolean.
    Bool,
    /// Days since 1970-01-01, stored as i64.
    Date,
}

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Shorthand constructor.
    pub fn new(name: &str, data_type: DataType) -> Self {
        Field {
            name: name.to_string(),
            data_type,
        }
    }
}

/// An ordered set of fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Ordered fields.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build from fields.
    pub fn new(fields: Vec<Field>) -> Rc<Self> {
        Rc::new(Schema { fields })
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field count.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Schema restricted to the given field indices.
    pub fn project(&self, indices: &[usize]) -> Rc<Schema> {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

/// A scalar value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer scalar.
    Int64(i64),
    /// Float scalar.
    Float64(f64),
    /// String scalar.
    Utf8(String),
    /// Boolean scalar.
    Bool(bool),
}

impl Value {
    /// Best-effort f64 view (for aggregate arithmetic).
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int64(v) => *v as f64,
            Value::Float64(v) => *v,
            Value::Bool(b) => *b as i64 as f64,
            Value::Utf8(_) => f64::NAN,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Utf8(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Integer column (also dates, as epoch days).
    Int64(Vec<i64>),
    /// Float column.
    Float64(Vec<f64>),
    /// String column.
    Utf8(Vec<String>),
    /// Boolean column.
    Bool(Vec<bool>),
}

impl Column {
    /// Row count.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Utf8(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type (`Date` indistinguishable from `Int64`).
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Utf8(_) => DataType::Utf8,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Scalar at `row` (panics out of bounds).
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int64(v) => Value::Int64(v[row]),
            Column::Float64(v) => Value::Float64(v[row]),
            Column::Utf8(v) => Value::Utf8(v[row].clone()),
            Column::Bool(v) => Value::Bool(v[row]),
        }
    }

    /// Keep rows where `mask` is true. Panics on length mismatch.
    pub fn filter(&self, mask: &[bool]) -> Column {
        assert_eq!(mask.len(), self.len(), "mask length mismatch");
        fn keep<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter()
                .zip(mask)
                .filter(|&(_x, &m)| m)
                .map(|(x, &_m)| x.clone())
                .collect()
        }
        match self {
            Column::Int64(v) => Column::Int64(keep(v, mask)),
            Column::Float64(v) => Column::Float64(keep(v, mask)),
            Column::Utf8(v) => Column::Utf8(keep(v, mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
        }
    }

    /// Gather rows by index.
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(indices.iter().map(|&i| v[i]).collect()),
            Column::Float64(v) => Column::Float64(indices.iter().map(|&i| v[i]).collect()),
            Column::Utf8(v) => Column::Utf8(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Gather rows by `u32` index — the engine's selection vectors are
    /// `u32`, so this avoids widening them just to call [`take`](Self::take).
    pub fn take_u32(&self, indices: &[u32]) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(indices.iter().map(|&i| v[i as usize]).collect()),
            Column::Float64(v) => Column::Float64(indices.iter().map(|&i| v[i as usize]).collect()),
            Column::Utf8(v) => {
                Column::Utf8(indices.iter().map(|&i| v[i as usize].clone()).collect())
            }
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i as usize]).collect()),
        }
    }

    /// Gather `(part, row)` locations across several column chunks of the
    /// same type into one output column — a concat-free multi-batch take.
    /// Panics if `parts` is empty or the types disagree.
    pub fn gather(parts: &[&Column], locs: &[(u32, u32)]) -> Column {
        match parts[0] {
            Column::Int64(_) => {
                let vs: Vec<&[i64]> = parts.iter().map(|c| c.as_i64()).collect();
                Column::Int64(
                    locs.iter()
                        .map(|&(p, r)| vs[p as usize][r as usize])
                        .collect(),
                )
            }
            Column::Float64(_) => {
                let vs: Vec<&[f64]> = parts.iter().map(|c| c.as_f64()).collect();
                Column::Float64(
                    locs.iter()
                        .map(|&(p, r)| vs[p as usize][r as usize])
                        .collect(),
                )
            }
            Column::Utf8(_) => {
                let vs: Vec<&[String]> = parts.iter().map(|c| c.as_str()).collect();
                Column::Utf8(
                    locs.iter()
                        .map(|&(p, r)| vs[p as usize][r as usize].clone())
                        .collect(),
                )
            }
            Column::Bool(_) => {
                let vs: Vec<&[bool]> = parts.iter().map(|c| c.as_bool()).collect();
                Column::Bool(
                    locs.iter()
                        .map(|&(p, r)| vs[p as usize][r as usize])
                        .collect(),
                )
            }
        }
    }

    /// Rows `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(v[start..end].to_vec()),
            Column::Float64(v) => Column::Float64(v[start..end].to_vec()),
            Column::Utf8(v) => Column::Utf8(v[start..end].to_vec()),
            Column::Bool(v) => Column::Bool(v[start..end].to_vec()),
        }
    }

    /// Append another column of the same type.
    pub fn extend(&mut self, other: &Column) {
        match (self, other) {
            (Column::Int64(a), Column::Int64(b)) => a.extend_from_slice(b),
            (Column::Float64(a), Column::Float64(b)) => a.extend_from_slice(b),
            (Column::Utf8(a), Column::Utf8(b)) => a.extend_from_slice(b),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            _ => panic!("column type mismatch in extend"),
        }
    }

    /// Int64 view (panics otherwise) — hot paths avoid `value()`.
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Column::Int64(v) => v,
            other => panic!("expected Int64, got {:?}", other.data_type()),
        }
    }

    /// Float64 view.
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Column::Float64(v) => v,
            other => panic!("expected Float64, got {:?}", other.data_type()),
        }
    }

    /// Utf8 view.
    pub fn as_str(&self) -> &[String] {
        match self {
            Column::Utf8(v) => v,
            other => panic!("expected Utf8, got {:?}", other.data_type()),
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> &[bool] {
        match self {
            Column::Bool(v) => v,
            other => panic!("expected Bool, got {:?}", other.data_type()),
        }
    }
}

/// A horizontal slice of a table: one column vector per schema field.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The batch's schema.
    pub schema: Rc<Schema>,
    /// One column per schema field.
    pub columns: Vec<Column>,
}

impl Batch {
    /// Build from schema and columns; validates lengths.
    pub fn new(schema: Rc<Schema>, columns: Vec<Column>) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        if let Some(first) = columns.first() {
            for c in &columns {
                assert_eq!(c.len(), first.len(), "ragged batch");
            }
        }
        Batch { schema, columns }
    }

    /// Zero-row batch with the given schema.
    pub fn empty(schema: Rc<Schema>) -> Self {
        let columns = schema
            .fields
            .iter()
            .map(|f| match f.data_type {
                DataType::Int64 | DataType::Date => Column::Int64(Vec::new()),
                DataType::Float64 => Column::Float64(Vec::new()),
                DataType::Utf8 => Column::Utf8(Vec::new()),
                DataType::Bool => Column::Bool(Vec::new()),
            })
            .collect();
        Batch { schema, columns }
    }

    /// Row count.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Column by field name.
    pub fn column(&self, name: &str) -> &Column {
        let idx = self
            .schema
            .index_of(name)
            .unwrap_or_else(|| panic!("no column {name}"));
        &self.columns[idx]
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Batch {
        Batch {
            schema: Rc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
        }
    }

    /// Keep only the given field indices.
    pub fn project(&self, indices: &[usize]) -> Batch {
        Batch {
            schema: self.schema.project(indices),
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    /// Gather rows by index.
    pub fn take(&self, indices: &[usize]) -> Batch {
        Batch {
            schema: Rc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
        }
    }

    /// Gather rows by `u32` selection vector.
    pub fn take_u32(&self, indices: &[u32]) -> Batch {
        Batch {
            schema: Rc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.take_u32(indices)).collect(),
        }
    }

    /// Gather `(part, row)` locations across several batches sharing a
    /// schema into one batch, without concatenating the inputs first.
    /// Panics if `parts` is empty.
    pub fn gather(parts: &[&Batch], locs: &[(u32, u32)]) -> Batch {
        let schema = Rc::clone(&parts[0].schema);
        let n_cols = parts[0].columns.len();
        let columns = (0..n_cols)
            .map(|ci| {
                let chunks: Vec<&Column> = parts.iter().map(|b| &b.columns[ci]).collect();
                Column::gather(&chunks, locs)
            })
            .collect();
        Batch { schema, columns }
    }

    /// Rows `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Batch {
        Batch {
            schema: Rc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.slice(start, end)).collect(),
        }
    }

    /// Concatenate batches sharing a schema. Panics on empty input.
    pub fn concat(batches: &[Batch]) -> Batch {
        let first = batches.first().expect("concat needs at least one batch");
        let mut out = first.clone();
        for b in &batches[1..] {
            for (a, c) in out.columns.iter_mut().zip(&b.columns) {
                a.extend(c);
            }
        }
        out
    }

    /// One row as a vector of scalars. Allocates a `Vec` and clones any
    /// strings per call — reference/oracle and result-formatting paths
    /// only; hot kernels go column-direct (`as_i64` & friends, `take_u32`).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Approximate in-memory size (bytes) — used for fragment planning.
    pub fn approx_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c {
                Column::Int64(v) => v.len() * 8,
                Column::Float64(v) => v.len() * 8,
                Column::Bool(v) => v.len(),
                Column::Utf8(v) => v.iter().map(|s| s.len() + 8).sum(),
            })
            .sum()
    }
}

/// Civil-date helpers (days since 1970-01-01), Howard Hinnant's algorithm.
pub mod date {
    /// `(year, month, day)` → days since the epoch.
    pub fn from_ymd(y: i64, m: u32, d: u32) -> i64 {
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as u64;
        let mp = ((m + 9) % 12) as u64;
        let doy = (153 * mp + 2) / 5 + d as u64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe as i64 - 719_468
    }

    /// Days since the epoch → `(year, month, day)`.
    pub fn to_ymd(days: i64) -> (i64, u32, u32) {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = (z - era * 146_097) as u64;
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
        let y = yoe as i64 + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        (if m <= 2 { y + 1 } else { y }, m, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Batch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("price", DataType::Float64),
            Field::new("flag", DataType::Utf8),
        ]);
        Batch::new(
            schema,
            vec![
                Column::Int64(vec![1, 2, 3, 4]),
                Column::Float64(vec![10.0, 20.0, 30.0, 40.0]),
                Column::Utf8(vec!["a".into(), "b".into(), "a".into(), "c".into()]),
            ],
        )
    }

    #[test]
    fn schema_lookup_and_projection() {
        let b = sample_batch();
        assert_eq!(b.schema.index_of("price"), Some(1));
        assert_eq!(b.schema.index_of("nope"), None);
        let p = b.project(&[2, 0]);
        assert_eq!(p.schema.fields[0].name, "flag");
        assert_eq!(p.column("id").as_i64(), &[1, 2, 3, 4]);
    }

    #[test]
    fn filter_take_slice() {
        let b = sample_batch();
        let f = b.filter(&[true, false, true, false]);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.column("id").as_i64(), &[1, 3]);
        let t = b.take(&[3, 0]);
        assert_eq!(t.column("price").as_f64(), &[40.0, 10.0]);
        let s = b.slice(1, 3);
        assert_eq!(
            s.column("flag").as_str(),
            &["b".to_string(), "a".to_string()]
        );
    }

    #[test]
    fn concat_appends_rows() {
        let b = sample_batch();
        let c = Batch::concat(&[b.clone(), b.clone()]);
        assert_eq!(c.num_rows(), 8);
        assert_eq!(c.column("id").as_i64()[4], 1);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_rejected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ]);
        Batch::new(
            schema,
            vec![Column::Int64(vec![1]), Column::Int64(vec![1, 2])],
        );
    }

    #[test]
    fn value_round_trip_and_row() {
        let b = sample_batch();
        assert_eq!(b.columns[0].value(2), Value::Int64(3));
        let row = b.row(1);
        assert_eq!(row[2], Value::Utf8("b".into()));
        assert_eq!(Value::Int64(7).as_f64(), 7.0);
    }

    #[test]
    fn empty_batch_has_right_types() {
        let schema = Schema::new(vec![
            Field::new("d", DataType::Date),
            Field::new("x", DataType::Bool),
        ]);
        let b = Batch::empty(schema);
        assert_eq!(b.num_rows(), 0);
        assert_eq!(b.columns[0].data_type(), DataType::Int64);
        assert_eq!(b.columns[1].data_type(), DataType::Bool);
    }

    #[test]
    fn date_round_trips() {
        for (y, m, d) in [(1970, 1, 1), (1992, 1, 1), (1998, 12, 31), (2024, 2, 29)] {
            let days = date::from_ymd(y, m, d);
            assert_eq!(date::to_ymd(days), (y, m, d));
        }
        assert_eq!(date::from_ymd(1970, 1, 1), 0);
        assert_eq!(date::from_ymd(1970, 1, 2), 1);
        // TPC-H Q1 cutoff: 1998-12-01 minus 90 days lands in 1998-09.
        let cutoff = date::from_ymd(1998, 12, 1) - 90;
        assert_eq!(date::to_ymd(cutoff).0, 1998);
    }

    #[test]
    fn take_u32_and_gather_match_take() {
        let b = sample_batch();
        let t = b.take(&[3, 1, 1]);
        let t32 = b.take_u32(&[3, 1, 1]);
        assert_eq!(t, t32);
        let b2 = b.slice(0, 2);
        let g = Batch::gather(&[&b, &b2], &[(1, 0), (0, 3), (1, 1)]);
        assert_eq!(g.column("id").as_i64(), &[1, 4, 2]);
        assert_eq!(
            g.column("flag").as_str(),
            &["a".to_string(), "c".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let b = sample_batch();
        // 4*8 + 4*8 + (1+8)*4 = 100
        assert_eq!(b.approx_bytes(), 100);
    }
}
