//! Criterion micro-benchmarks for the hot engine paths: SPF encode/decode,
//! expression evaluation, operators, and an end-to-end simulated query.
//!
//! These complement the paper-reproduction binaries: they track the *real*
//! (wall-clock) performance of the library itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use skyrise::data::{spf, tpch};
use skyrise::engine::{load_dataset, queries, reference, QueryConfig};
use skyrise::prelude::*;
use std::hint::black_box;

fn bench_spf(c: &mut Criterion) {
    let tables = tpch::generate(0.01, 7);
    let batch = tables.lineitem;
    let bytes = batch.approx_bytes() as u64;
    let encoded = spf::write(std::slice::from_ref(&batch), 8192);

    let mut g = c.benchmark_group("spf");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("encode_lineitem", |b| {
        b.iter(|| spf::write(std::slice::from_ref(black_box(&batch)), 8192))
    });
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("decode_lineitem", |b| {
        b.iter(|| spf::read_all(black_box(&encoded), None).unwrap())
    });
    g.bench_function("decode_projected_two_columns", |b| {
        let proj = ["l_shipdate".to_string(), "l_extendedprice".to_string()];
        b.iter(|| spf::read_all(black_box(&encoded), Some(&proj)).unwrap())
    });
    g.finish();
}

fn bench_operators(c: &mut Criterion) {
    let tables = tpch::generate(0.01, 7);
    let lineitem = tables.lineitem;
    let rows = lineitem.num_rows() as u64;

    let mut g = c.benchmark_group("operators");
    g.throughput(Throughput::Elements(rows));
    g.bench_function("reference_q1", |b| {
        b.iter(|| reference::q1(black_box(&lineitem)))
    });
    g.bench_function("reference_q6", |b| {
        b.iter(|| reference::q6(black_box(&lineitem)))
    });
    g.bench_function("filter_mask", |b| {
        use skyrise::engine::{CmpOp, Expr, UdfRegistry};
        let udfs = UdfRegistry::with_builtins();
        let pred = Expr::col("l_quantity").cmp(CmpOp::Lt, Expr::lit_f64(24.0));
        b.iter(|| skyrise::engine::expr::evaluate_mask(black_box(&pred), &lineitem, &udfs).unwrap())
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.bench_function("q6_end_to_end_faas", |b| {
        b.iter_batched(
            || (),
            |()| {
                let mut sim = Sim::new(99);
                let ctx = sim.ctx();
                let h = sim.spawn(async move {
                    let meter = shared_meter();
                    let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
                    let t = tpch::generate(0.005, 3);
                    load_dataset(
                        &storage,
                        &DatasetLayout {
                            name: "h_lineitem".into(),
                            partitions: 8,
                            target_partition_logical_bytes: None,
                            rows_per_group: 4096,
                        },
                        &t.lineitem,
                    )
                    .unwrap();
                    let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
                    let engine =
                        Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
                    engine
                        .run(
                            &queries::q6(),
                            QueryConfig {
                                target_bytes_per_worker: 64 << 10,
                                ..QueryConfig::default()
                            },
                        )
                        .await
                        .unwrap()
                        .runtime_secs
                });
                sim.run();
                black_box(h.try_take().unwrap())
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("token_bucket_grant_loop", |b| {
        use skyrise::net::RateLimiter;
        b.iter(|| {
            let mut bucket = RateLimiter::continuous(1e9, 1e8, 5e8);
            let mut total = 0.0;
            for i in 0..10_000u64 {
                total += bucket.grant(
                    skyrise::sim::SimTime::from_nanos(i * 10_000_000),
                    skyrise::sim::SimDuration::from_millis(10),
                    f64::MAX,
                );
            }
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_spf, bench_operators, bench_simulation);
criterion_main!(benches);
