//! Reliability-tax sweep: suite latency/cost vs injected fault rate. Run
//! with `--release`; set `SKYRISE_FULL=1` for the full rate grid. Pass
//! `--trace-out <path>` to export a Chrome-trace of every simulation.

fn main() {
    skyrise_bench::run_cli("reliability", skyrise_bench::experiments::reliability);
}
