//! Wall-clock benchmark for the vectorised data-plane kernels.
//!
//! Times the normalized-key kernels (`bind::execute_chain`) against the
//! row-at-a-time `ScalarKey` oracle (`operators::execute_ops`) on TPC-H
//! batches, plus the end-to-end paper query suite inside the simulation
//! with the legacy kernels toggled on and off. Emits `BENCH_engine.json`.
//!
//! ```text
//! cargo run --release -p skyrise-bench --bin kernel_bench -- --smoke
//! ```
//!
//! Flags: `--smoke` (small inputs, few iterations — the CI profile),
//! `--out <path>` (default `BENCH_engine.json`).
//!
//! Unlike everything under `experiments/`, these numbers are *real* wall
//! time of the library itself, so they vary run to run; each measurement
//! is the best of N iterations to damp scheduler noise.

// Wall-clock benchmark binary: host time is the measurement itself.
#![allow(clippy::disallowed_methods)]

use skyrise::data::{tpch, Batch};
use skyrise::engine::bind::{execute_chain, set_legacy_kernels};
use skyrise::engine::expr::{CmpOp, Expr, UdfRegistry};
use skyrise::engine::operators::{execute_ops, partition_batch, partition_batch_scalar};
use skyrise::engine::plan::{AggExpr, AggFunc, AggMode, Op};
use skyrise::engine::queries;
use skyrise::prelude::*;
use skyrise_bench::datasets::load_paper_datasets;
use skyrise_bench::in_sim;
use std::hint::black_box;

/// Best-of-N wall time in milliseconds.
///
/// Wall clock is deliberate here: this binary measures the library's real
/// performance and never runs inside a simulation.
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Split one big batch into a stream of fixed-size batches, as the worker
/// data plane sees them.
fn stream_of(batch: &Batch, rows_per: usize) -> Vec<Batch> {
    let n = batch.num_rows();
    (0..n.div_ceil(rows_per))
        .map(|i| batch.slice(i * rows_per, ((i + 1) * rows_per).min(n)))
        .collect()
}

struct Kernel {
    name: &'static str,
    rows: usize,
    legacy_ms: f64,
    normalized_ms: f64,
}

impl Kernel {
    fn speedup(&self) -> f64 {
        self.legacy_ms / self.normalized_ms
    }
}

/// Time one op chain under both executors.
fn bench_ops(name: &'static str, iters: usize, ops: &[Op], inputs: &[Vec<Batch>]) -> Kernel {
    let udfs = UdfRegistry::new();
    let rows = inputs[0].iter().map(Batch::num_rows).sum();
    let legacy_ms = time_ms(iters, || {
        black_box(execute_ops(ops, inputs, &udfs).expect("legacy kernel"));
    });
    let normalized_ms = time_ms(iters, || {
        black_box(execute_chain(ops, inputs, &udfs).expect("normalized kernel"));
    });
    Kernel {
        name,
        rows,
        legacy_ms,
        normalized_ms,
    }
}

fn kernel_suite(sf: f64, iters: usize) -> Vec<Kernel> {
    let tables = tpch::generate(sf, 7);
    let lineitem = stream_of(&tables.lineitem, 8192);
    let orders = stream_of(&tables.orders, 8192);
    let mut out = Vec::new();

    // Q1-shaped aggregate: two low-cardinality string keys.
    out.push(bench_ops(
        "hash_aggregate_string_keys",
        iters,
        &[Op::HashAggregate {
            group_by: vec!["l_returnflag".into(), "l_linestatus".into()],
            aggregates: vec![
                AggExpr::new(AggFunc::Sum, Expr::col("l_quantity"), "sum_qty"),
                AggExpr::new(AggFunc::Sum, Expr::col("l_extendedprice"), "sum_price"),
                AggExpr::new(AggFunc::Avg, Expr::col("l_discount"), "avg_disc"),
                AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "count_order"),
            ],
            mode: AggMode::Single,
        }],
        &[lineitem.clone()],
    ));

    // High-cardinality int key.
    out.push(bench_ops(
        "hash_aggregate_int_key",
        iters,
        &[Op::HashAggregate {
            group_by: vec!["l_orderkey".into()],
            aggregates: vec![
                AggExpr::new(AggFunc::Sum, Expr::col("l_extendedprice"), "sum_price"),
                AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "cnt"),
            ],
            mode: AggMode::Single,
        }],
        &[lineitem.clone()],
    ));

    out.push(bench_ops(
        "hash_join_orderkey",
        iters,
        &[Op::HashJoin {
            build_input: 1,
            build_key: "o_orderkey".into(),
            probe_key: "l_orderkey".into(),
            build_columns: vec!["o_totalprice".into()],
        }],
        &[lineitem.clone(), orders],
    ));

    out.push(bench_ops(
        "sort_multi_key",
        iters,
        &[Op::Sort {
            by: vec![
                ("l_returnflag".into(), true),
                ("l_shipdate".into(), false),
                ("l_orderkey".into(), true),
            ],
        }],
        &[lineitem.clone()],
    ));

    // Fused filter -> aggregate: the selection vector flows from the
    // filter straight into the aggregate's accumulators (no materialise
    // between operators). The legacy arm copies the survivors first.
    out.push(bench_ops(
        "filter_then_aggregate_fused",
        iters,
        &[
            Op::Filter {
                predicate: Expr::col("l_quantity").cmp(CmpOp::Lt, Expr::lit_f64(24.0)),
            },
            Op::HashAggregate {
                group_by: vec!["l_returnflag".into(), "l_linestatus".into()],
                aggregates: vec![
                    AggExpr::new(AggFunc::Sum, Expr::col("l_extendedprice"), "sum_price"),
                    AggExpr::new(AggFunc::Avg, Expr::col("l_discount"), "avg_disc"),
                    AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "cnt"),
                ],
                mode: AggMode::Single,
            },
        ],
        &[lineitem],
    ));

    // Shuffle partitioner, string + int keys, 32 buckets.
    let keys = ["l_returnflag".to_string(), "l_orderkey".to_string()];
    let batch = &tables.lineitem;
    let legacy_ms = time_ms(iters, || {
        black_box(partition_batch_scalar(batch, &keys, 32).expect("scalar partition"));
    });
    let normalized_ms = time_ms(iters, || {
        black_box(partition_batch(batch, &keys, 32).expect("vectorised partition"));
    });
    out.push(Kernel {
        name: "partition_32_buckets",
        rows: batch.num_rows(),
        legacy_ms,
        normalized_ms,
    });
    out
}

/// Wall time of the full paper query suite inside one simulation, with the
/// data plane on either the legacy or the normalized-key kernels.
///
/// Wall clock by design: the virtual-time result is identical for both
/// arms (same plans, same seed) — the *host* time differs.
fn suite_wall_ms(legacy: bool, payload_sf: f64, fraction: f64, seed: u64) -> f64 {
    set_legacy_kernels(legacy);
    let t0 = std::time::Instant::now();
    let rows = in_sim(seed, move |ctx| {
        Box::pin(async move {
            let meter = shared_meter();
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            load_paper_datasets(&storage, payload_sf, fraction).expect("load datasets");
            let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
            let mut rows = 0usize;
            for plan in queries::suite() {
                let resp = engine.run_default(&plan).await.expect("suite query");
                rows += resp.rows.map(|r| r.len()).unwrap_or(0);
            }
            rows
        })
    });
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    set_legacy_kernels(false);
    assert!(rows > 0, "suite produced no rows");
    ms
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_engine.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown flag {other} (expected --smoke / --out <path>)"),
        }
    }
    let (sf, iters, payload_sf, fraction, e2e_iters) = if smoke {
        (0.02, 3, 0.01, 0.02, 1)
    } else {
        (0.2, 7, 0.02, 0.1, 2)
    };

    println!(
        "kernel_bench: sf={sf} iters={iters} mode={}",
        if smoke { "smoke" } else { "full" }
    );
    let kernels = kernel_suite(sf, iters);
    for k in &kernels {
        println!(
            "  {:28} {:>9} rows  legacy {:>9.3} ms  normalized {:>9.3} ms  {:>5.2}x",
            k.name,
            k.rows,
            k.legacy_ms,
            k.normalized_ms,
            k.speedup()
        );
    }
    let geomean_speedup =
        (kernels.iter().map(|k| k.speedup().ln()).sum::<f64>() / kernels.len() as f64).exp();
    println!("  kernel geomean speedup: {geomean_speedup:.2}x");

    // Interleave arms so thermal / frequency drift hits both equally.
    let mut legacy_ms = f64::INFINITY;
    let mut normalized_ms = f64::INFINITY;
    for i in 0..e2e_iters {
        legacy_ms = legacy_ms.min(suite_wall_ms(true, payload_sf, fraction, 0xBE ^ i));
        normalized_ms = normalized_ms.min(suite_wall_ms(false, payload_sf, fraction, 0xBE ^ i));
    }
    let e2e_speedup = legacy_ms / normalized_ms;
    println!(
        "  end-to-end suite: legacy {legacy_ms:.1} ms  normalized {normalized_ms:.1} ms  {e2e_speedup:.2}x"
    );

    let json = serde_json::json!({
        "generated_by": "kernel_bench",
        "mode": if smoke { "smoke" } else { "full" },
        "status": "measured",
        "kernels": kernels.iter().map(|k| serde_json::json!({
            "name": k.name,
            "rows": k.rows,
            "iters": iters,
            "legacy_ms": k.legacy_ms,
            "normalized_ms": k.normalized_ms,
            "speedup": k.speedup(),
        })).collect::<Vec<_>>(),
        "geomean_speedup": geomean_speedup,
        "end_to_end": {
            "suite": ["q1", "q6", "q12", "bb_q3"],
            "payload_sf": payload_sf,
            "fraction": fraction,
            "legacy_ms": legacy_ms,
            "normalized_ms": normalized_ms,
            "speedup": e2e_speedup,
        },
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).unwrap() + "\n",
    )
    .expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
