//! Wall-clock benchmark for the vectorised data-plane kernels.
//!
//! Times the normalized-key kernels (`bind::execute_chain`) against the
//! row-at-a-time `ScalarKey` oracle (`operators::execute_ops`) on TPC-H
//! batches, plus the end-to-end paper query suite inside the simulation
//! with the legacy kernels toggled on and off. Emits `BENCH_engine.json`.
//!
//! ```text
//! cargo run --release -p skyrise-bench --bin kernel_bench -- --smoke
//! ```
//!
//! Flags: `--smoke` (small inputs, few iterations — the CI profile),
//! `--out <path>` (default `BENCH_engine.json`).
//!
//! Unlike everything under `experiments/`, these numbers are *real* wall
//! time of the library itself, so they vary run to run; each measurement
//! is the best of N iterations to damp scheduler noise.

// Wall-clock benchmark binary: host time is the measurement itself.
#![allow(clippy::disallowed_methods)]

use skyrise::data::{tpch, Batch};
use skyrise::engine::bind::{execute_chain, set_legacy_kernels};
use skyrise::engine::expr::{CmpOp, Expr, UdfRegistry};
use skyrise::engine::operators::{execute_ops, partition_batch, partition_batch_scalar};
use skyrise::engine::plan::{AggExpr, AggFunc, AggMode, Op, Sink};
use skyrise::engine::queries;
use skyrise::engine::worker::set_legacy_shuffle_read;
use skyrise::prelude::*;
use skyrise_bench::datasets::load_paper_datasets;
use skyrise_bench::{capture_runs, in_sim};
use std::collections::BTreeMap;
use std::hint::black_box;

/// Best-of-N wall time in milliseconds.
///
/// Wall clock is deliberate here: this binary measures the library's real
/// performance and never runs inside a simulation.
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Split one big batch into a stream of fixed-size batches, as the worker
/// data plane sees them.
fn stream_of(batch: &Batch, rows_per: usize) -> Vec<Batch> {
    let n = batch.num_rows();
    (0..n.div_ceil(rows_per))
        .map(|i| batch.slice(i * rows_per, ((i + 1) * rows_per).min(n)))
        .collect()
}

struct Kernel {
    name: &'static str,
    rows: usize,
    legacy_ms: f64,
    normalized_ms: f64,
}

impl Kernel {
    fn speedup(&self) -> f64 {
        self.legacy_ms / self.normalized_ms
    }
}

/// Time one op chain under both executors.
fn bench_ops(name: &'static str, iters: usize, ops: &[Op], inputs: &[Vec<Batch>]) -> Kernel {
    let udfs = UdfRegistry::new();
    let rows = inputs[0].iter().map(Batch::num_rows).sum();
    let legacy_ms = time_ms(iters, || {
        black_box(execute_ops(ops, inputs, &udfs).expect("legacy kernel"));
    });
    let normalized_ms = time_ms(iters, || {
        black_box(execute_chain(ops, inputs, &udfs).expect("normalized kernel"));
    });
    Kernel {
        name,
        rows,
        legacy_ms,
        normalized_ms,
    }
}

fn kernel_suite(sf: f64, iters: usize) -> Vec<Kernel> {
    let tables = tpch::generate(sf, 7);
    let lineitem = stream_of(&tables.lineitem, 8192);
    let orders = stream_of(&tables.orders, 8192);
    let mut out = Vec::new();

    // Q1-shaped aggregate: two low-cardinality string keys.
    out.push(bench_ops(
        "hash_aggregate_string_keys",
        iters,
        &[Op::HashAggregate {
            group_by: vec!["l_returnflag".into(), "l_linestatus".into()],
            aggregates: vec![
                AggExpr::new(AggFunc::Sum, Expr::col("l_quantity"), "sum_qty"),
                AggExpr::new(AggFunc::Sum, Expr::col("l_extendedprice"), "sum_price"),
                AggExpr::new(AggFunc::Avg, Expr::col("l_discount"), "avg_disc"),
                AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "count_order"),
            ],
            mode: AggMode::Single,
        }],
        &[lineitem.clone()],
    ));

    // High-cardinality int key.
    out.push(bench_ops(
        "hash_aggregate_int_key",
        iters,
        &[Op::HashAggregate {
            group_by: vec!["l_orderkey".into()],
            aggregates: vec![
                AggExpr::new(AggFunc::Sum, Expr::col("l_extendedprice"), "sum_price"),
                AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "cnt"),
            ],
            mode: AggMode::Single,
        }],
        &[lineitem.clone()],
    ));

    out.push(bench_ops(
        "hash_join_orderkey",
        iters,
        &[Op::HashJoin {
            build_input: 1,
            build_key: "o_orderkey".into(),
            probe_key: "l_orderkey".into(),
            build_columns: vec!["o_totalprice".into()],
        }],
        &[lineitem.clone(), orders],
    ));

    out.push(bench_ops(
        "sort_multi_key",
        iters,
        &[Op::Sort {
            by: vec![
                ("l_returnflag".into(), true),
                ("l_shipdate".into(), false),
                ("l_orderkey".into(), true),
            ],
        }],
        &[lineitem.clone()],
    ));

    // Fused filter -> aggregate: the selection vector flows from the
    // filter straight into the aggregate's accumulators (no materialise
    // between operators). The legacy arm copies the survivors first.
    out.push(bench_ops(
        "filter_then_aggregate_fused",
        iters,
        &[
            Op::Filter {
                predicate: Expr::col("l_quantity").cmp(CmpOp::Lt, Expr::lit_f64(24.0)),
            },
            Op::HashAggregate {
                group_by: vec!["l_returnflag".into(), "l_linestatus".into()],
                aggregates: vec![
                    AggExpr::new(AggFunc::Sum, Expr::col("l_extendedprice"), "sum_price"),
                    AggExpr::new(AggFunc::Avg, Expr::col("l_discount"), "avg_disc"),
                    AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "cnt"),
                ],
                mode: AggMode::Single,
            },
        ],
        &[lineitem],
    ));

    // Shuffle partitioner, string + int keys, 32 buckets.
    let keys = ["l_returnflag".to_string(), "l_orderkey".to_string()];
    let batch = &tables.lineitem;
    let legacy_ms = time_ms(iters, || {
        black_box(partition_batch_scalar(batch, &keys, 32).expect("scalar partition"));
    });
    let normalized_ms = time_ms(iters, || {
        black_box(partition_batch(batch, &keys, 32).expect("vectorised partition"));
    });
    out.push(Kernel {
        name: "partition_32_buckets",
        rows: batch.num_rows(),
        legacy_ms,
        normalized_ms,
    });
    out
}

/// Wall time of the full paper query suite inside one simulation, with the
/// data plane on either the legacy or the normalized-key kernels.
///
/// Wall clock by design: the virtual-time result is identical for both
/// arms (same plans, same seed) — the *host* time differs.
fn suite_wall_ms(legacy: bool, payload_sf: f64, fraction: f64, seed: u64) -> f64 {
    set_legacy_kernels(legacy);
    let t0 = std::time::Instant::now();
    let rows = in_sim(seed, move |ctx| {
        Box::pin(async move {
            let meter = shared_meter();
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            load_paper_datasets(&storage, payload_sf, fraction).expect("load datasets");
            let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
            let mut rows = 0usize;
            for plan in queries::suite() {
                let resp = engine.run_default(&plan).await.expect("suite query");
                rows += resp.rows.map(|r| r.len()).unwrap_or(0);
            }
            rows
        })
    });
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    set_legacy_kernels(false);
    assert!(rows > 0, "suite produced no rows");
    ms
}

/// One arm of the shuffle-read comparison: TPC-H Q12 with 8-way fragments
/// and `combine = 8` shuffle sinks, read either whole-object (legacy) or
/// through the bucket-indexed ranged path. Virtual query seconds, storage
/// requests, and the `engine.shuffle.*` telemetry counters all come from
/// the deterministic simulation, so this comparison is bit-stable run to
/// run — unlike the wall-clock kernels above.
fn shuffle_read_arm(
    legacy: bool,
    payload_sf: f64,
    fraction: f64,
    seed: u64,
) -> (f64, u64, BTreeMap<String, u64>) {
    set_legacy_shuffle_read(legacy);
    let ((secs, requests), summary) = capture_runs(false, true, 0, || {
        in_sim(seed, move |ctx| {
            Box::pin(async move {
                let meter = shared_meter();
                let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
                load_paper_datasets(&storage, payload_sf, fraction).expect("load datasets");
                let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
                let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
                engine.warm(16).await;
                let mut plan = queries::q12();
                for p in plan.pipelines.iter_mut() {
                    if p.id != 3 {
                        p.fragments = Some(8);
                    }
                    if let Sink::ShuffleWrite { combine: c, .. } = &mut p.sink {
                        *c = 8;
                    }
                }
                let response = engine.run_default(&plan).await.expect("q12");
                (response.runtime_secs, response.total_requests())
            })
        })
    });
    set_legacy_shuffle_read(false);
    (secs, requests, summary.metrics.counters)
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_engine.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown flag {other} (expected --smoke / --out <path>)"),
        }
    }
    let (sf, iters, payload_sf, fraction, e2e_iters) = if smoke {
        (0.02, 3, 0.01, 0.02, 1)
    } else {
        (0.2, 7, 0.02, 0.1, 2)
    };

    println!(
        "kernel_bench: sf={sf} iters={iters} mode={}",
        if smoke { "smoke" } else { "full" }
    );
    let mut kernels = kernel_suite(sf, iters);

    // Shuffle read: whole-object demultiplex vs bucket-indexed byte ranges.
    // Virtual (simulated) milliseconds on both arms — deterministic, so the
    // speedup feeds the geomean gate without wall-clock noise.
    let sr_seed = 0xC0FFEE;
    // The two arms consume different numbers of RNG draws (request latency
    // samples), so any single seed carries O(100 ms) of stream noise in the
    // later stages; summing a few seeds keeps the comparison deterministic
    // while washing that out.
    let sr_seeds = 3u64;
    let (sr_fraction, sr_payload) = if smoke { (0.04, 0.01) } else { (0.08, 0.01) };
    let arm_total = |legacy: bool| {
        let mut secs = 0.0;
        let mut requests = 0u64;
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for s in 0..sr_seeds {
            let (sec, req, ctrs) = shuffle_read_arm(legacy, sr_payload, sr_fraction, sr_seed + s);
            secs += sec;
            requests += req;
            for (k, v) in ctrs {
                *counters.entry(k).or_insert(0) += v;
            }
        }
        (secs, requests, counters)
    };
    let (legacy_secs, legacy_requests, legacy_counters) = arm_total(true);
    let (ranged_secs, ranged_requests, ranged_counters) = arm_total(false);
    let counter = |m: &BTreeMap<String, u64>, k: &str| m.get(k).copied().unwrap_or(0);
    let legacy_bytes = counter(&legacy_counters, "engine.shuffle.bytes_read");
    let ranged_bytes = counter(&ranged_counters, "engine.shuffle.bytes_read");
    let whole_object_bytes = counter(&ranged_counters, "engine.shuffle.bytes_whole_object");
    assert!(
        ranged_bytes < legacy_bytes,
        "ranged shuffle reads must move fewer bytes ({ranged_bytes} vs {legacy_bytes})"
    );
    println!(
        "  shuffle_read (virtual): whole-object {legacy_secs:.2}s {legacy_requests} req {legacy_bytes} B | \
         ranged {ranged_secs:.2}s {ranged_requests} req {ranged_bytes} B ({whole_object_bytes} B whole)"
    );
    kernels.push(Kernel {
        name: "shuffle_read_ranged",
        rows: counter(&legacy_counters, "engine.shuffle.rows_demuxed") as usize,
        legacy_ms: legacy_secs * 1e3,
        normalized_ms: ranged_secs * 1e3,
    });

    for k in &kernels {
        println!(
            "  {:28} {:>9} rows  legacy {:>9.3} ms  normalized {:>9.3} ms  {:>5.2}x",
            k.name,
            k.rows,
            k.legacy_ms,
            k.normalized_ms,
            k.speedup()
        );
    }
    let geomean_speedup =
        (kernels.iter().map(|k| k.speedup().ln()).sum::<f64>() / kernels.len() as f64).exp();
    println!("  kernel geomean speedup: {geomean_speedup:.2}x");

    // Interleave arms so thermal / frequency drift hits both equally.
    let mut legacy_ms = f64::INFINITY;
    let mut normalized_ms = f64::INFINITY;
    for i in 0..e2e_iters {
        legacy_ms = legacy_ms.min(suite_wall_ms(true, payload_sf, fraction, 0xBE ^ i));
        normalized_ms = normalized_ms.min(suite_wall_ms(false, payload_sf, fraction, 0xBE ^ i));
    }
    let e2e_speedup = legacy_ms / normalized_ms;
    println!(
        "  end-to-end suite: legacy {legacy_ms:.1} ms  normalized {normalized_ms:.1} ms  {e2e_speedup:.2}x"
    );

    let json = serde_json::json!({
        "generated_by": "kernel_bench",
        "mode": if smoke { "smoke" } else { "full" },
        "status": "measured",
        "kernels": kernels.iter().map(|k| serde_json::json!({
            "name": k.name,
            "rows": k.rows,
            "iters": iters,
            "legacy_ms": k.legacy_ms,
            "normalized_ms": k.normalized_ms,
            "speedup": k.speedup(),
        })).collect::<Vec<_>>(),
        "geomean_speedup": geomean_speedup,
        "end_to_end": {
            "suite": ["q1", "q6", "q12", "bb_q3"],
            "payload_sf": payload_sf,
            "fraction": fraction,
            "legacy_ms": legacy_ms,
            "normalized_ms": normalized_ms,
            "speedup": e2e_speedup,
        },
        "shuffle_read": {
            "query": "q12",
            "fragments": 8,
            "combine": 8,
            "payload_sf": sr_payload,
            "fraction": sr_fraction,
            "seeds": sr_seeds,
            "deterministic": true,
            "whole_object": {
                "virtual_secs": legacy_secs,
                "requests": legacy_requests,
                "bytes_read": legacy_bytes,
                "bytes_decoded": counter(&legacy_counters, "engine.shuffle.bytes_decoded"),
                "rows_demuxed": counter(&legacy_counters, "engine.shuffle.rows_demuxed"),
            },
            "ranged": {
                "virtual_secs": ranged_secs,
                "requests": ranged_requests,
                "bytes_read": ranged_bytes,
                "bytes_whole_object": whole_object_bytes,
                "bytes_pruned": counter(&ranged_counters, "engine.shuffle.bytes_pruned"),
                "bytes_decoded": counter(&ranged_counters, "engine.shuffle.bytes_decoded"),
            },
            "bytes_reduction": 1.0 - ranged_bytes as f64 / legacy_bytes.max(1) as f64,
            "speedup": legacy_secs / ranged_secs,
        },
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).unwrap() + "\n",
    )
    .expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
