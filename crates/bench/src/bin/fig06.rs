//! Regenerate the paper's fig06. Run with `--release`; set `SKYRISE_FULL=1`
//! for paper-scale durations where applicable. Pass `--trace-out <path>`
//! to export a Chrome-trace of every simulation.

fn main() {
    skyrise_bench::run_cli("fig06", skyrise_bench::experiments::fig06);
}
