//! Extension experiment: extra_observations. Run with `--release`.

fn main() {
    skyrise_bench::finish(&skyrise_bench::experiments::extra_observations());
}
