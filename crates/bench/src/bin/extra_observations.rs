//! Regenerate the paper's extra_observations. Run with `--release`; set `SKYRISE_FULL=1`
//! for paper-scale durations where applicable. Pass `--trace-out <path>`
//! to export a Chrome-trace of every simulation.

fn main() {
    skyrise_bench::run_cli(
        "extra_observations",
        skyrise_bench::experiments::extra_observations,
    );
}
