//! Extension experiment: ablation_binary_size. Run with `--release`.

fn main() {
    skyrise_bench::finish(&skyrise_bench::experiments::ablation_binary_size());
}
