//! Run the complete experiment suite: every table and figure of the
//! paper, in order. Results land under `results/`. Each experiment
//! prints a summary line: virtual time simulated, wall-clock elapsed,
//! events traced, and output paths.
//!
//! With `--trace-out <path>`, every experiment's Chrome-trace is written
//! next to `<path>`, suffixed with the experiment name (e.g.
//! `--trace-out /tmp/all.json` yields `/tmp/all-fig05.json`, ...).

use skyrise_bench::{experiments as e, run_experiment};
use std::path::PathBuf;

type Experiment = (&'static str, fn() -> skyrise::micro::ExperimentResult);

/// Derive the per-experiment trace path: `dir/stem-name.ext`.
fn trace_path_for(base: &PathBuf, name: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".into());
    let ext = base
        .extension()
        .map(|s| format!(".{}", s.to_string_lossy()))
        .unwrap_or_default();
    base.with_file_name(format!("{stem}-{name}{ext}"))
}

fn main() {
    let trace_out = skyrise_bench::parse_trace_out(std::env::args().skip(1));
    // CLI shell only: wall time for the suite summary, never fed into a sim.
    #[allow(clippy::disallowed_methods)]
    let t0 = std::time::Instant::now();
    let all: Vec<Experiment> = vec![
        ("table01", e::table01),
        ("table02", e::table02),
        ("table03", e::table03),
        ("table04", e::table04),
        ("fig05", e::fig05),
        ("fig06", e::fig06),
        ("fig07", e::fig07),
        ("fig08", e::fig08),
        ("fig09", e::fig09),
        ("fig10", e::fig10),
        ("fig11", e::fig11),
        ("fig12", e::fig12),
        ("fig13", e::fig13),
        ("fig14", e::fig14),
        ("fig15", e::fig15),
        ("table05", e::table05),
        ("table06", e::table06),
        ("table07", e::table07),
        ("table08", e::table08),
        ("reliability", e::reliability),
        ("ablation_combining", e::ablation_combining),
        ("ablation_binary_size", e::ablation_binary_size),
        ("extra_observations", e::extra_observations),
    ];
    for (name, run) in all {
        let path = trace_out.as_ref().map(|base| trace_path_for(base, name));
        run_experiment(name, run, path.as_deref());
    }
    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
