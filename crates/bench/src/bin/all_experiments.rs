//! Run the complete experiment suite: every table and figure of the
//! paper, in order. Results land under `results/`.

use skyrise_bench::{experiments as e, finish};

type Experiment = (&'static str, fn() -> skyrise::micro::ExperimentResult);

fn main() {
    let t0 = std::time::Instant::now();
    let all: Vec<Experiment> = vec![
        ("table01", e::table01),
        ("table02", e::table02),
        ("table03", e::table03),
        ("table04", e::table04),
        ("fig05", e::fig05),
        ("fig06", e::fig06),
        ("fig07", e::fig07),
        ("fig08", e::fig08),
        ("fig09", e::fig09),
        ("fig10", e::fig10),
        ("fig11", e::fig11),
        ("fig12", e::fig12),
        ("fig13", e::fig13),
        ("fig14", e::fig14),
        ("fig15", e::fig15),
        ("table05", e::table05),
        ("table06", e::table06),
        ("table07", e::table07),
        ("table08", e::table08),
        ("ablation_combining", e::ablation_combining),
        ("ablation_binary_size", e::ablation_binary_size),
        ("extra_observations", e::extra_observations),
    ];
    for (name, run) in all {
        let started = std::time::Instant::now();
        finish(&run());
        eprintln!("[{name}] wall time: {:.1}s", started.elapsed().as_secs_f64());
    }
    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
