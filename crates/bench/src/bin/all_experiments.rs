//! Run the complete experiment suite: every table and figure of the
//! paper. Results land under `results/`. Each experiment prints a summary
//! line: virtual time simulated, wall-clock elapsed, events traced, and
//! output paths.
//!
//! Experiments run in parallel across worker threads (`--jobs N`, default
//! one per hardware thread; `--jobs 1` forces the serial baseline). Each
//! experiment's simulations stay on a single thread, so parallelism never
//! touches simulation determinism — reports and result files are
//! byte-identical at any job count, and are printed in paper order.
//!
//! With `--trace-out <path>`, every experiment's Chrome-trace is written
//! next to `<path>`, suffixed with the experiment name (e.g.
//! `--trace-out /tmp/all.json` yields `/tmp/all-fig05.json`, ...).
//!
//! With `--metrics-out <path>`, every simulation runs with a telemetry
//! registry installed and the suite-wide merged snapshot is written as
//! JSONL at `<path>` plus Prometheus text exposition at `<path>.prom`.
//!
//! With `--shard i/n`, only every n-th experiment (offset i) runs —
//! composes with `--jobs` for fleet-style CI splits.

// Host-side harness shell: wall-clock use is deliberate (see crate docs).
#![allow(clippy::disallowed_methods)]

use skyrise_bench::experiments as e;
use skyrise_bench::harness::{apply_shard, parse_suite_args, report, run_jobs, ExperimentJob};
use skyrise_bench::write_metrics;
use std::path::PathBuf;

/// Derive the per-experiment trace path: `dir/stem-name.ext`.
fn trace_path_for(base: &PathBuf, name: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".into());
    let ext = base
        .extension()
        .map(|s| format!(".{}", s.to_string_lossy()))
        .unwrap_or_default();
    base.with_file_name(format!("{stem}-{name}{ext}"))
}

fn main() {
    let args = parse_suite_args(std::env::args().skip(1));
    // Suite wall time for the closing summary; never fed into a sim.
    let t0 = std::time::Instant::now();
    let jobs: Vec<ExperimentJob> = e::ALL
        .iter()
        .map(|&(name, run)| ExperimentJob {
            name,
            run,
            trace_out: args.trace_out.as_ref().map(|b| trace_path_for(b, name)),
            metrics: args.metrics_out.is_some(),
        })
        .collect();
    let jobs = apply_shard(jobs, args.shard);
    eprintln!(
        "running {} experiments on {} worker(s)",
        jobs.len(),
        args.jobs
    );
    let done = run_jobs(jobs, args.jobs);
    // Merge in submission (paper) order, so the suite snapshot is
    // byte-identical at any job count.
    let mut suite_metrics = skyrise::sim::MetricsSnapshot::default();
    for experiment in &done {
        report(experiment);
        suite_metrics.merge(&experiment.metrics);
    }
    if let Some(path) = &args.metrics_out {
        match write_metrics(path, &suite_metrics) {
            Ok(prom_path) => eprintln!(
                "suite metrics -> {}, {}",
                path.display(),
                prom_path.display()
            ),
            Err(e) => eprintln!("(could not write metrics to {}: {e})", path.display()),
        }
    }
    eprintln!(
        "total wall time: {:.1}s ({} workers)",
        t0.elapsed().as_secs_f64(),
        args.jobs
    );
}
