//! Run the complete experiment suite: every table and figure of the
//! paper. Results land under `results/`. Each experiment prints a summary
//! line: virtual time simulated, wall-clock elapsed, events traced, and
//! output paths.
//!
//! Experiments run in parallel across worker threads (`--jobs N`, default
//! one per hardware thread; `--jobs 1` forces the serial baseline). Each
//! experiment's simulations stay on a single thread, so parallelism never
//! touches simulation determinism — reports and result files are
//! byte-identical at any job count, and are printed in paper order.
//!
//! With `--trace-out <path>`, every experiment's Chrome-trace is written
//! next to `<path>`, suffixed with the experiment name (e.g.
//! `--trace-out /tmp/all.json` yields `/tmp/all-fig05.json`, ...).

// Host-side harness shell: wall-clock use is deliberate (see crate docs).
#![allow(clippy::disallowed_methods)]

use skyrise_bench::experiments as e;
use skyrise_bench::harness::{parse_suite_args, report, run_jobs, ExperimentJob};
use std::path::PathBuf;

/// Derive the per-experiment trace path: `dir/stem-name.ext`.
fn trace_path_for(base: &PathBuf, name: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".into());
    let ext = base
        .extension()
        .map(|s| format!(".{}", s.to_string_lossy()))
        .unwrap_or_default();
    base.with_file_name(format!("{stem}-{name}{ext}"))
}

fn main() {
    let args = parse_suite_args(std::env::args().skip(1));
    // Suite wall time for the closing summary; never fed into a sim.
    let t0 = std::time::Instant::now();
    let jobs: Vec<ExperimentJob> = e::ALL
        .iter()
        .map(|&(name, run)| ExperimentJob {
            name,
            run,
            trace_out: args.trace_out.as_ref().map(|b| trace_path_for(b, name)),
        })
        .collect();
    eprintln!(
        "running {} experiments on {} worker(s)",
        jobs.len(),
        args.jobs
    );
    let done = run_jobs(jobs, args.jobs);
    for experiment in &done {
        report(experiment);
    }
    eprintln!(
        "total wall time: {:.1}s ({} workers)",
        t0.elapsed().as_secs_f64(),
        args.jobs
    );
}
