//! Regenerate the paper's table05. Run with `--release`; set `SKYRISE_FULL=1`
//! for paper-scale durations where applicable. Pass `--trace-out <path>`
//! to export a Chrome-trace of every simulation.

fn main() {
    skyrise_bench::run_cli("table05", skyrise_bench::experiments::table05);
}
