//! Extension experiment: ablation_combining. Run with `--release`.

fn main() {
    skyrise_bench::finish(&skyrise_bench::experiments::ablation_combining());
}
