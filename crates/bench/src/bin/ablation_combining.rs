//! Regenerate the paper's ablation_combining. Run with `--release`; set `SKYRISE_FULL=1`
//! for paper-scale durations where applicable. Pass `--trace-out <path>`
//! to export a Chrome-trace of every simulation.

fn main() {
    skyrise_bench::run_cli(
        "ablation_combining",
        skyrise_bench::experiments::ablation_combining,
    );
}
