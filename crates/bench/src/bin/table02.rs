//! Regenerate the paper's table02. Run with `--release`; set `SKYRISE_FULL=1`
//! for paper-scale durations where applicable.

fn main() {
    skyrise_bench::finish(&skyrise_bench::experiments::table02());
}
