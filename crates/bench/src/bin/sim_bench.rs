//! Event-loop microbenchmark: the current simulator core (slab task
//! table, cancellation-aware quaternary timer heap, coalesced scheduler
//! hooks) against a faithful in-bin port of the previous executor
//! (`HashMap` task table with remove/insert per poll, fresh waker
//! allocation per poll, `BinaryHeap` timers with fired-flag tombstones,
//! per-step `RefCell` borrows). Emits `BENCH_sim.json` with events/sec
//! per workload and the speedup.
//!
//! ```text
//! cargo run --release -p skyrise-bench --bin sim_bench -- --smoke
//! ```
//!
//! Flags: `--smoke` (small inputs — the CI profile), `--out <path>`
//! (default `BENCH_sim.json`).
//!
//! Like `kernel_bench`, these are *real wall-clock* numbers of the
//! library itself: each measurement is the best of N runs to damp
//! scheduler noise. Both executors run the same four workloads with the
//! same virtual-event counts:
//!
//! * `sleep_chain` — many tasks each awaiting a chain of staggered
//!   sleeps; the pure timer-pop / task-poll hot path.
//! * `cancel_storm` — every round races a short sleep against a long
//!   one, cancelling the loser; the tombstone-vs-removal showdown.
//! * `spawn_churn` — waves of short-lived tasks; task-table insert,
//!   wake, remove throughput.
//! * `fan_in` — all tasks sleeping to the same deadlines; equal-deadline
//!   ordering and burst wake handling.

// Host-side benchmark binary: wall clock IS the measurement.
#![allow(clippy::disallowed_methods)]

use skyrise::sim::{race, SimDuration, SimTime};

/// Faithful port of the pre-slab executor, kept here as the benchmark
/// baseline so the committed speedup is measured, not remembered.
mod legacy {
    use skyrise::sim::{Sanitizer, SimDuration, SimTime};
    use std::cell::{Cell, RefCell};
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap, VecDeque};
    use std::future::Future;
    use std::pin::Pin;
    use std::rc::{Rc, Weak};
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Wake, Waker};

    type LocalBoxFuture = Pin<Box<dyn Future<Output = ()>>>;
    pub type TaskId = u64;

    #[derive(Default)]
    struct WakeQueue {
        woken: Mutex<Vec<TaskId>>,
    }

    struct TaskWaker {
        id: TaskId,
        queue: Arc<WakeQueue>,
    }

    impl Wake for TaskWaker {
        fn wake(self: Arc<Self>) {
            self.queue
                .woken
                .lock()
                .expect("wake queue poisoned")
                .push(self.id);
        }
    }

    struct TimerEntry {
        deadline: SimTime,
        seq: u64,
        waker: Waker,
        fired: Rc<Cell<bool>>,
    }

    impl PartialEq for TimerEntry {
        fn eq(&self, other: &Self) -> bool {
            self.deadline == other.deadline && self.seq == other.seq
        }
    }
    impl Eq for TimerEntry {}
    impl PartialOrd for TimerEntry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for TimerEntry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
        }
    }

    struct SimState {
        now: Cell<SimTime>,
        // simlint: allow(DET005): benchmark baseline — this is the old
        // executor's keyed-access-only task map, never iterated.
        tasks: RefCell<HashMap<TaskId, LocalBoxFuture>>,
        ready: RefCell<VecDeque<TaskId>>,
        timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
        next_task_id: Cell<TaskId>,
        next_timer_seq: Cell<u64>,
        wake_queue: Arc<WakeQueue>,
        live_tasks: Cell<usize>,
        // The old layout's per-step borrow cost: a separate cell consulted
        // on every poll and every clock advance.
        sanitizer: RefCell<Sanitizer>,
    }

    pub struct Sim {
        state: Rc<SimState>,
    }

    #[derive(Clone)]
    pub struct SimCtx {
        state: Weak<SimState>,
    }

    impl Sim {
        pub fn new(_seed: u64) -> Self {
            Sim {
                state: Rc::new(SimState {
                    now: Cell::new(SimTime::ZERO),
                    // simlint: allow(DET005): keyed access only; see above.
                    tasks: RefCell::new(HashMap::new()),
                    ready: RefCell::new(VecDeque::new()),
                    timers: RefCell::new(BinaryHeap::new()),
                    next_task_id: Cell::new(0),
                    next_timer_seq: Cell::new(0),
                    wake_queue: Arc::new(WakeQueue::default()),
                    live_tasks: Cell::new(0),
                    sanitizer: RefCell::new(Sanitizer::disabled()),
                }),
            }
        }

        pub fn ctx(&self) -> SimCtx {
            SimCtx {
                state: Rc::downgrade(&self.state),
            }
        }

        pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
        where
            F: Future + 'static,
            F::Output: 'static,
        {
            self.ctx().spawn(fut)
        }

        pub fn run(&mut self) -> SimTime {
            loop {
                self.drain_ready();
                let next = {
                    let mut timers = self.state.timers.borrow_mut();
                    loop {
                        match timers.peek() {
                            Some(Reverse(e)) if e.fired.get() => {
                                timers.pop();
                            }
                            Some(Reverse(e)) => break Some(e.deadline),
                            None => break None,
                        }
                    }
                };
                match next {
                    Some(deadline) => {
                        self.state
                            .sanitizer
                            .borrow()
                            .on_advance(self.state.now.get(), deadline);
                        self.state.now.set(deadline);
                        let mut timers = self.state.timers.borrow_mut();
                        while let Some(Reverse(e)) = timers.peek() {
                            if e.deadline > deadline {
                                break;
                            }
                            let e = timers.pop().expect("peeked entry").0;
                            if !e.fired.replace(true) {
                                e.waker.wake();
                            }
                        }
                    }
                    None => {
                        let live = self.state.live_tasks.get();
                        assert!(live == 0, "legacy sim deadlock: {live} task(s) blocked");
                        return self.state.now.get();
                    }
                }
            }
        }

        fn drain_ready(&mut self) {
            loop {
                {
                    let mut woken = self
                        .state
                        .wake_queue
                        .woken
                        .lock()
                        .expect("wake queue poisoned");
                    let mut ready = self.state.ready.borrow_mut();
                    ready.extend(woken.drain(..));
                }
                let Some(id) = self.state.ready.borrow_mut().pop_front() else {
                    let empty = self
                        .state
                        .wake_queue
                        .woken
                        .lock()
                        .expect("wake queue poisoned")
                        .is_empty();
                    if empty {
                        return;
                    }
                    continue;
                };
                let Some(mut fut) = self.state.tasks.borrow_mut().remove(&id) else {
                    continue;
                };
                self.state
                    .sanitizer
                    .borrow()
                    .on_poll(id, self.state.now.get());
                // Fresh waker allocation on every poll — the old cost.
                let waker = Waker::from(Arc::new(TaskWaker {
                    id,
                    queue: Arc::clone(&self.state.wake_queue),
                }));
                let mut cx = Context::from_waker(&waker);
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {
                        self.state.live_tasks.set(self.state.live_tasks.get() - 1);
                        self.state.sanitizer.borrow().on_complete(id);
                    }
                    Poll::Pending => {
                        self.state.tasks.borrow_mut().insert(id, fut);
                    }
                }
            }
        }
    }

    impl SimCtx {
        fn state(&self) -> Rc<SimState> {
            self.state.upgrade().expect("SimCtx used after drop")
        }

        pub fn now(&self) -> SimTime {
            self.state().now.get()
        }

        pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
        where
            F: Future + 'static,
            F::Output: 'static,
        {
            let state = self.state();
            let id = state.next_task_id.get();
            state.next_task_id.set(id + 1);
            state.live_tasks.set(state.live_tasks.get() + 1);

            let slot: Rc<RefCell<JoinSlot<F::Output>>> = Rc::new(RefCell::new(JoinSlot::default()));
            let slot2 = Rc::clone(&slot);
            let wrapped: LocalBoxFuture = Box::pin(async move {
                let out = fut.await;
                let mut s = slot2.borrow_mut();
                s.value = Some(out);
                if let Some(w) = s.waiter.take() {
                    w.wake();
                }
            });
            state.tasks.borrow_mut().insert(id, wrapped);
            state.ready.borrow_mut().push_back(id);
            JoinHandle { slot }
        }

        pub fn sleep(&self, d: SimDuration) -> Sleep {
            Sleep {
                ctx: self.clone(),
                deadline: self.now().saturating_add(d),
                fired: None,
            }
        }

        pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
            Sleep {
                ctx: self.clone(),
                deadline,
                fired: None,
            }
        }

        fn register_timer(&self, deadline: SimTime, waker: Waker) -> Rc<Cell<bool>> {
            let state = self.state();
            let fired = Rc::new(Cell::new(false));
            let seq = state.next_timer_seq.get();
            state.next_timer_seq.set(seq + 1);
            state.timers.borrow_mut().push(Reverse(TimerEntry {
                deadline,
                seq,
                waker,
                fired: Rc::clone(&fired),
            }));
            fired
        }
    }

    struct JoinSlot<T> {
        value: Option<T>,
        waiter: Option<Waker>,
    }

    impl<T> Default for JoinSlot<T> {
        fn default() -> Self {
            JoinSlot {
                value: None,
                waiter: None,
            }
        }
    }

    pub struct JoinHandle<T> {
        slot: Rc<RefCell<JoinSlot<T>>>,
    }

    impl<T> Future for JoinHandle<T> {
        type Output = T;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
            let mut slot = self.slot.borrow_mut();
            if let Some(v) = slot.value.take() {
                Poll::Ready(v)
            } else {
                slot.waiter = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    pub struct Sleep {
        ctx: SimCtx,
        deadline: SimTime,
        fired: Option<Rc<Cell<bool>>>,
    }

    impl Future for Sleep {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.ctx.now() >= self.deadline {
                if let Some(f) = &self.fired {
                    f.set(true);
                }
                return Poll::Ready(());
            }
            // Re-register on every pending poll, tombstoning the previous
            // entry — the old executor's behaviour.
            if let Some(old) = self.fired.take() {
                old.set(true);
            }
            let deadline = self.deadline;
            let fired = self.ctx.register_timer(deadline, cx.waker().clone());
            self.fired = Some(fired);
            Poll::Pending
        }
    }

    impl Drop for Sleep {
        fn drop(&mut self) {
            if let Some(f) = &self.fired {
                f.set(true);
            }
        }
    }
}

/// The four workloads, instantiated once per executor. Each returns its
/// scheduler-event count (spawns + timer registrations), which is the
/// numerator of events/sec and identical across executors by construction.
macro_rules! workload_impls {
    ($mod_name:ident, $Sim:ty) => {
        mod $mod_name {
            use super::*;

            pub fn sleep_chain(tasks: u64, rounds: u64) -> u64 {
                let mut sim = <$Sim>::new(1);
                // simlint: allow(DET001): `tasks` here is the u64 count parameter, not the legacy HashMap field.
                for t in 0..tasks {
                    let ctx = sim.ctx();
                    sim.spawn(async move {
                        for r in 0..rounds {
                            let us = 1 + (t * 31 + r * 7) % 97;
                            ctx.sleep(SimDuration::from_micros(us)).await;
                        }
                    });
                }
                sim.run();
                tasks * (rounds + 1)
            }

            pub fn cancel_storm(tasks: u64, rounds: u64) -> u64 {
                let mut sim = <$Sim>::new(1);
                // simlint: allow(DET001): `tasks` here is the u64 count parameter, not the legacy HashMap field.
                for t in 0..tasks {
                    let ctx = sim.ctx();
                    sim.spawn(async move {
                        for r in 0..rounds {
                            let us = 1 + (t * 13 + r * 3) % 29;
                            let loser = ctx.sleep(SimDuration::from_millis(1_000));
                            let winner = ctx.sleep(SimDuration::from_micros(us));
                            let _ = race(winner, loser).await;
                        }
                    });
                }
                sim.run();
                tasks * (2 * rounds + 1)
            }

            pub fn spawn_churn(waves: u64, per_wave: u64) -> u64 {
                let mut sim = <$Sim>::new(1);
                let ctx = sim.ctx();
                sim.spawn(async move {
                    for w in 0..waves {
                        let handles: Vec<_> = (0..per_wave)
                            .map(|i| {
                                let ctx = ctx.clone();
                                ctx.clone().spawn(async move {
                                    let ns = 100 + (w * 13 + i) % 50;
                                    ctx.sleep(SimDuration::from_nanos(ns)).await;
                                })
                            })
                            .collect();
                        for h in handles {
                            h.await;
                        }
                    }
                });
                sim.run();
                waves * per_wave * 2 + 1
            }

            pub fn fan_in(tasks: u64, rounds: u64) -> u64 {
                let mut sim = <$Sim>::new(1);
                // simlint: allow(DET001): `tasks` here is the u64 count parameter, not the legacy HashMap field.
                for _ in 0..tasks {
                    let ctx = sim.ctx();
                    sim.spawn(async move {
                        for r in 0..rounds {
                            let deadline = SimTime::from_nanos((r + 1) * 10_000);
                            ctx.sleep_until(deadline).await;
                        }
                    });
                }
                sim.run();
                tasks * (rounds + 1)
            }
        }
    };
}

workload_impls!(current, skyrise::sim::Sim);
workload_impls!(baseline, legacy::Sim);

/// `sleep_chain` on the current executor with a metric registry installed:
/// the telemetry-overhead probe. With metrics live the executor keeps its
/// always-on `Cell` stats and flushes them once at exit, so the acceptance
/// bar is an events/sec ratio ≥ 0.95 against the registry-free run (and no
/// measurable difference when no registry is installed — that path is the
/// plain `current::sleep_chain` measured above).
fn sleep_chain_with_metrics(tasks: u64, rounds: u64) -> u64 {
    let mut sim = skyrise::sim::Sim::new(1);
    let registry = sim.install_metrics();
    // simlint: allow(DET001): `tasks` here is the u64 count parameter, not the legacy HashMap field.
    for t in 0..tasks {
        let ctx = sim.ctx();
        sim.spawn(async move {
            for r in 0..rounds {
                let us = 1 + (t * 31 + r * 7) % 97;
                ctx.sleep(SimDuration::from_micros(us)).await;
            }
        });
    }
    sim.run();
    assert!(
        registry.snapshot().counters["sim.executor.polls"] > 0,
        "telemetry probe ran without executor self-profiling"
    );
    tasks * (rounds + 1)
}

/// Best-of-N wall time in seconds.
fn time_best(iters: usize, mut f: impl FnMut() -> u64) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        events = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (events, best)
}

struct Workload {
    name: &'static str,
    events: u64,
    current_eps: f64,
    legacy_eps: f64,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.current_eps / self.legacy_eps
    }
}

fn bench(
    name: &'static str,
    iters: usize,
    cur: impl FnMut() -> u64,
    old: impl FnMut() -> u64,
) -> Workload {
    let (events, cur_secs) = time_best(iters, cur);
    let (events_old, old_secs) = time_best(iters, old);
    assert_eq!(events, events_old, "{name}: event counts diverged");
    Workload {
        name,
        events,
        current_eps: events as f64 / cur_secs,
        legacy_eps: events as f64 / old_secs,
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown flag {other} (expected --smoke / --out <path>)"),
        }
    }
    // (tasks/waves, rounds/per_wave) per workload, and best-of iterations.
    let (iters, chain, storm, churn, fan) = if smoke {
        (3, (200, 100), (100, 50), (50, 100), (200, 100))
    } else {
        (5, (1_000, 500), (500, 200), (200, 500), (1_000, 500))
    };
    println!(
        "sim_bench: mode={} iters={iters}",
        if smoke { "smoke" } else { "full" }
    );

    let workloads = [
        bench(
            "sleep_chain",
            iters,
            || current::sleep_chain(chain.0, chain.1),
            || baseline::sleep_chain(chain.0, chain.1),
        ),
        bench(
            "cancel_storm",
            iters,
            || current::cancel_storm(storm.0, storm.1),
            || baseline::cancel_storm(storm.0, storm.1),
        ),
        bench(
            "spawn_churn",
            iters,
            || current::spawn_churn(churn.0, churn.1),
            || baseline::spawn_churn(churn.0, churn.1),
        ),
        bench(
            "fan_in",
            iters,
            || current::fan_in(fan.0, fan.1),
            || baseline::fan_in(fan.0, fan.1),
        ),
    ];

    let mut log_sum = 0.0;
    for w in &workloads {
        println!(
            "  {:14} {:>9} events  current {:>12.0} ev/s  legacy {:>12.0} ev/s  {:>5.2}x",
            w.name,
            w.events,
            w.current_eps,
            w.legacy_eps,
            w.speedup()
        );
        log_sum += w.speedup().ln();
    }
    let geomean = (log_sum / workloads.len() as f64).exp();
    println!("  geomean speedup: {geomean:.2}x");

    // Telemetry overhead: the same sleep_chain hot path with a registry
    // installed, against the registry-free measurement already taken.
    let (_, telemetry_secs) = time_best(iters, || sleep_chain_with_metrics(chain.0, chain.1));
    let telemetry_eps = workloads[0].events as f64 / telemetry_secs;
    let telemetry_ratio = telemetry_eps / workloads[0].current_eps;
    println!(
        "  telemetry on:  {:>12.0} ev/s ({:.1}% of registry-free throughput)",
        telemetry_eps,
        100.0 * telemetry_ratio
    );

    // Flat structure, hand-formatted: this binary must not drag a JSON
    // dependency into release experiment builds.
    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"sim_bench\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str("  \"status\": \"measured\",\n");
    json.push_str(
        "  \"metric\": \"scheduler events per second (spawns + timer registrations)\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"iters\": {}, \
             \"current_events_per_sec\": {:.0}, \"legacy_events_per_sec\": {:.0}, \
             \"speedup\": {:.3}}}{}\n",
            w.name,
            w.events,
            iters,
            w.current_eps,
            w.legacy_eps,
            w.speedup(),
            if i + 1 < workloads.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"telemetry_overhead\": {{\"workload\": \"sleep_chain\", \
         \"events_per_sec_enabled\": {telemetry_eps:.0}, \
         \"events_per_sec_disabled\": {:.0}, \
         \"throughput_ratio\": {telemetry_ratio:.3}}},\n",
        workloads[0].current_eps
    ));
    json.push_str(&format!("  \"geomean_speedup\": {geomean:.3}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_sim.json");
    println!("wrote {out_path}");
}
