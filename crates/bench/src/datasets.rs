//! Paper-layout dataset loading (Table 4).
//!
//! The paper's tables at SF1000, ZSTD-compressed Parquet:
//!
//! | table | size | partitions | partition size |
//! |---|---|---|---|
//! | H-Lineitem | 177.4 GiB | 996 | 182.4 MiB |
//! | H-Orders | 44.9 GiB | 249 | 176.1 MiB |
//! | BB-Clickstreams | 94.9 GiB | 1,000 | 92.7 MiB |
//! | BB-Item | 0.08 GiB | 1 | 75.8 MiB |
//!
//! Experiments load a configurable *fraction* of that layout: partition
//! logical sizes stay at paper scale (what matters for burst budgets and
//! request counts per worker), while the partition count shrinks.

use skyrise::data::{tpch, tpcxbb};
use skyrise::engine::{load_dataset, DatasetLayout, DatasetMeta, EngineError};
use skyrise::prelude::*;

/// One table's paper-scale layout.
#[derive(Debug, Clone, Copy)]
pub struct PaperTable {
    pub name: &'static str,
    pub sf1000_partitions: u64,
    pub partition_mib: f64,
}

/// The Table 4 inventory.
pub const PAPER_TABLES: [PaperTable; 4] = [
    PaperTable {
        name: "h_lineitem",
        sf1000_partitions: 996,
        partition_mib: 182.4,
    },
    PaperTable {
        name: "h_orders",
        sf1000_partitions: 249,
        partition_mib: 176.1,
    },
    PaperTable {
        name: "bb_clickstreams",
        sf1000_partitions: 1_000,
        partition_mib: 92.7,
    },
    PaperTable {
        name: "bb_item",
        sf1000_partitions: 1,
        partition_mib: 75.8,
    },
];

/// Loaded dataset metadata, one entry per table.
pub struct LoadedDatasets {
    pub metas: Vec<DatasetMeta>,
}

/// Load all four tables into `storage` at `fraction` of the SF1000
/// partition count, carrying payloads generated at `payload_sf`.
pub fn load_paper_datasets(
    storage: &Storage,
    payload_sf: f64,
    fraction: f64,
) -> Result<LoadedDatasets, EngineError> {
    let tpch_tables = tpch::generate(payload_sf, 7);
    let bb = tpcxbb::generate(payload_sf * 10.0, 7);
    let mut metas = Vec::new();
    for spec in PAPER_TABLES {
        let batch = match spec.name {
            "h_lineitem" => &tpch_tables.lineitem,
            "h_orders" => &tpch_tables.orders,
            "bb_clickstreams" => &bb.clickstreams,
            "bb_item" => &bb.item,
            _ => unreachable!(),
        };
        let partitions = ((spec.sf1000_partitions as f64 * fraction).round() as usize).max(1);
        let layout = DatasetLayout {
            name: spec.name.into(),
            partitions,
            target_partition_logical_bytes: Some((spec.partition_mib * MIB as f64) as u64),
            rows_per_group: 8192,
        };
        metas.push(load_dataset(storage, &layout, batch)?);
    }
    Ok(LoadedDatasets { metas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise::pricing::shared_meter;
    use skyrise::sim::Sim;

    #[test]
    fn fractional_layout_keeps_partition_sizes() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let meter = shared_meter();
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            let loaded = load_paper_datasets(&storage, 0.005, 0.02).unwrap();
            loaded.metas
        });
        sim.run();
        let metas = h.try_take().unwrap();
        assert_eq!(metas.len(), 4);
        let lineitem = &metas[0];
        assert_eq!(lineitem.partitions.len(), 20); // 996 * 0.02
        let mean_mib = lineitem.mean_partition_bytes() / MIB as f64;
        assert!(
            (mean_mib - 182.4).abs() < 2.0,
            "partition size {mean_mib} MiB"
        );
        let item = &metas[3];
        assert_eq!(item.partitions.len(), 1, "item is always one partition");
    }
}
