//! # skyrise-bench — the experiment harness
//!
//! One module per paper table/figure (see DESIGN.md §4). Each experiment
//! is a function returning an [`ExperimentResult`]; the `bin/` wrappers
//! print it and persist JSON/CSV under `results/`.
//!
//! Two profiles:
//! * **fast** (default) — time-scaled variants of the long-running
//!   experiments (S3 partition scaling runs at a compressed split
//!   interval; results are converted back to paper scale). Minutes of
//!   wall time for the whole suite.
//! * **full** (`SKYRISE_FULL=1`) — paper-scale durations.

pub mod datasets;
pub mod experiments;

use skyrise::micro::ExperimentResult;
use std::path::PathBuf;

/// Where results are written (`SKYRISE_RESULTS`, default `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var("SKYRISE_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Paper-scale mode?
pub fn full_profile() -> bool {
    std::env::var("SKYRISE_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Print and persist an experiment result.
pub fn finish(result: &ExperimentResult) {
    println!("=== {}: {} ===", result.id, result.title);
    for (k, v) in &result.params {
        println!("  param {k} = {v}");
    }
    for (k, v) in &result.scalars {
        println!("  {k} = {v:.6}");
    }
    if let Some(cost) = &result.cost {
        println!("  simulated experiment cost: ${:.4}", cost.total_usd());
    }
    let dir = results_dir();
    match result.save(&dir) {
        Ok(()) => println!("  saved to {}/{}.json", dir.display(), result.id),
        Err(e) => eprintln!("  (could not save results: {e})"),
    }
    println!();
}

/// Run a closure inside a fresh simulation and return its output.
pub fn in_sim<T: 'static>(
    seed: u64,
    f: impl FnOnce(skyrise::sim::SimCtx) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>
        + 'static,
) -> T {
    let mut sim = skyrise::sim::Sim::new(seed);
    let ctx = sim.ctx();
    let h = sim.spawn(f(ctx));
    sim.run();
    h.try_take().expect("experiment completed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_sim_runs_to_completion() {
        let out = in_sim(1, |ctx| {
            Box::pin(async move {
                ctx.sleep(skyrise::sim::SimDuration::from_secs(10)).await;
                ctx.now().as_secs_f64()
            })
        });
        assert_eq!(out, 10.0);
    }

    #[test]
    fn profile_defaults_to_fast() {
        // Unless the caller exported SKYRISE_FULL=1.
        if std::env::var("SKYRISE_FULL").is_err() {
            assert!(!full_profile());
        }
    }
}
