//! # skyrise-bench — the experiment harness
//!
//! One module per paper table/figure (see DESIGN.md §4). Each experiment
//! is a function returning an [`ExperimentResult`]; the `bin/` wrappers
//! print it and persist JSON/CSV under `results/`.
//!
//! Two profiles:
//! * **fast** (default) — time-scaled variants of the long-running
//!   experiments (S3 partition scaling runs at a compressed split
//!   interval; results are converted back to paper scale). Minutes of
//!   wall time for the whole suite.
//! * **full** (`SKYRISE_FULL=1`) — paper-scale durations.
//!
//! Every binary accepts `--trace-out <path>`: the experiment then runs
//! with virtual-time tracing enabled in every simulation, and the merged
//! trace is written as Chrome-trace JSON at `<path>` (open in Perfetto)
//! plus a flat JSONL log at `<path>.jsonl`. Traces are byte-identical
//! across runs with identical seeds.

// Host-side harness crate: wall-clock timing and OS threads are its job
// (summary lines, the parallel runner). The determinism rules guard the
// simulation crates; here they are allowed crate-wide, mirroring simlint's
// crate-level exemption for `crates/bench`.
#![allow(clippy::disallowed_methods)]

pub mod datasets;
pub mod experiments;
pub mod harness;

use skyrise::micro::ExperimentResult;
use skyrise::sim::{MetricsSnapshot, SanitizerReport, Tracer};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

static RESULTS_DIR: OnceLock<PathBuf> = OnceLock::new();
static FULL_PROFILE: OnceLock<bool> = OnceLock::new();

/// Where results are written (`SKYRISE_RESULTS`, default `results/`).
///
/// Resolved from the environment exactly once per process and cached, so
/// every harness worker thread sees the same value even if the environment
/// is mutated mid-run.
pub fn results_dir() -> PathBuf {
    RESULTS_DIR
        .get_or_init(|| {
            // Harness configuration, not sim state: resolved once, cached.
            #[allow(clippy::disallowed_methods)]
            std::env::var("SKYRISE_RESULTS")
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from("results"))
        })
        .clone()
}

/// Paper-scale mode? (`SKYRISE_FULL=1`.) Resolved once per process, like
/// [`results_dir`] — an experiment suite cannot change profile halfway.
pub fn full_profile() -> bool {
    *FULL_PROFILE.get_or_init(|| {
        // Harness configuration, not sim state: resolved once, cached.
        #[allow(clippy::disallowed_methods)]
        std::env::var("SKYRISE_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// Print and persist an experiment result.
pub fn finish(result: &ExperimentResult) {
    println!("=== {}: {} ===", result.id, result.title);
    for (k, v) in &result.params {
        println!("  param {k} = {v}");
    }
    for (k, v) in &result.scalars {
        println!("  {k} = {v:.6}");
    }
    if let Some(cost) = &result.cost {
        println!("  simulated experiment cost: ${:.4}", cost.total_usd());
    }
    let dir = results_dir();
    match result.save(&dir) {
        Ok(()) => println!("  saved to {}/{}.json", dir.display(), result.id),
        Err(e) => eprintln!("  (could not save results: {e})"),
    }
    println!();
}

// ---------------------------------------------------------------------------
// Trace capture across simulations
// ---------------------------------------------------------------------------

/// Per-thread capture state: `in_sim` consults it to decide whether to
/// install a tracer, and records per-simulation accounting either way.
#[derive(Default)]
struct CaptureState {
    /// Install a tracer in every simulation (set by `--trace-out`).
    trace_all: bool,
    /// Install a metric registry in every simulation (set by
    /// `--metrics-out`); snapshots merge into one per experiment.
    metrics_all: bool,
    /// Added to every `in_sim` seed (the determinism test's lever for
    /// "different seed → different trace").
    seed_offset: u64,
    runs: Vec<(String, Tracer)>,
    digests: Vec<(String, SanitizerReport)>,
    metrics: MetricsSnapshot,
    sims: u64,
    virtual_secs: f64,
}

thread_local! {
    static CAPTURE: RefCell<CaptureState> = RefCell::new(CaptureState::default());
}

/// What a traced experiment run produced, aside from its result.
pub struct RunSummary {
    /// One `(label, tracer)` per traced simulation, in execution order.
    pub runs: Vec<(String, Tracer)>,
    /// One `(label, report)` per sanitized simulation, in execution order.
    /// Two same-seed executions of the same experiment must produce
    /// identical digest sequences; see `tests/determinism_sweep.rs`.
    pub digests: Vec<(String, SanitizerReport)>,
    /// Telemetry registry snapshots merged across every simulation of the
    /// run (empty unless metrics capture was on). Canonical and bit-stable:
    /// same seeds → byte-identical `canonical_json()`.
    pub metrics: MetricsSnapshot,
    /// Simulations executed.
    pub sims: u64,
    /// Total virtual time simulated (seconds).
    pub virtual_secs: f64,
}

impl RunSummary {
    /// Total events recorded across all traced simulations.
    pub fn events(&self) -> u64 {
        self.runs.iter().map(|(_, t)| t.len() as u64).sum()
    }

    fn run_refs(&self) -> Vec<(String, &Tracer)> {
        self.runs
            .iter()
            .map(|(label, t)| (label.clone(), t))
            .collect()
    }

    /// Merged Chrome-trace JSON over every traced simulation.
    pub fn chrome_json(&self) -> String {
        skyrise::sim::chrome_trace_json_multi(&self.run_refs())
    }

    /// Merged JSONL event log over every traced simulation.
    pub fn jsonl(&self) -> String {
        skyrise::sim::jsonl_multi(&self.run_refs())
    }
}

/// Run `f` with capture active: every [`in_sim`] inside it records its
/// virtual time, and — when `trace` (resp. `metrics`) is set — installs a
/// tracer (resp. metric registry) whose events are collected into the
/// returned [`RunSummary`]. `seed_offset` shifts every simulation seed
/// (0 for normal runs).
pub fn capture_runs<T>(
    trace: bool,
    metrics: bool,
    seed_offset: u64,
    f: impl FnOnce() -> T,
) -> (T, RunSummary) {
    CAPTURE.with(|c| {
        *c.borrow_mut() = CaptureState {
            trace_all: trace,
            metrics_all: metrics,
            seed_offset,
            ..CaptureState::default()
        }
    });
    let out = f();
    let state = CAPTURE.with(|c| std::mem::take(&mut *c.borrow_mut()));
    (
        out,
        RunSummary {
            runs: state.runs,
            digests: state.digests,
            metrics: state.metrics,
            sims: state.sims,
            virtual_secs: state.virtual_secs,
        },
    )
}

fn record_sim(
    seed: u64,
    end: skyrise::sim::SimTime,
    tracer: Option<Tracer>,
    report: Option<SanitizerReport>,
    metrics: Option<MetricsSnapshot>,
) {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        c.sims += 1;
        c.virtual_secs += end.as_secs_f64();
        let label = format!("sim{:02}-seed{:x}", c.sims - 1, seed);
        if let Some(t) = tracer {
            c.runs.push((label.clone(), t));
        }
        if let Some(r) = report {
            c.digests.push((label, r));
        }
        if let Some(m) = metrics {
            c.metrics.merge(&m);
        }
    });
}

/// Shared tail of the `in_sim` family: snapshot the registry (when one was
/// installed), fold its digest into the sanitizer — so nondeterministic
/// telemetry fails the sweep like any other divergent state — and record
/// the simulation into the active capture.
fn finish_sim(
    seed: u64,
    end: skyrise::sim::SimTime,
    tracer: Option<Tracer>,
    sanitizer: &skyrise::sim::Sanitizer,
    registry: Option<skyrise::sim::MetricRegistry>,
) {
    let snapshot = registry.map(|r| r.snapshot());
    if let Some(snap) = &snapshot {
        sanitizer.observe("telemetry", snap.digest());
    }
    record_sim(seed, end, tracer, sanitizer.report(), snapshot);
}

/// Run a closure inside a fresh simulation and return its output.
pub fn in_sim<T: 'static>(
    seed: u64,
    f: impl FnOnce(skyrise::sim::SimCtx) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>
        + 'static,
) -> T {
    let (trace_all, metrics_all, offset) = CAPTURE.with(|c| {
        let c = c.borrow();
        (c.trace_all, c.metrics_all, c.seed_offset)
    });
    let seed = seed.wrapping_add(offset);
    let mut sim = skyrise::sim::Sim::new(seed);
    let tracer = trace_all.then(|| sim.install_tracer());
    let registry = metrics_all.then(|| sim.install_metrics());
    let sanitizer = sim.enable_sanitizer();
    let ctx = sim.ctx();
    let h = sim.spawn(f(ctx));
    let end = sim.run();
    finish_sim(seed, end, tracer, &sanitizer, registry);
    h.try_take().expect("experiment completed")
}

/// Like [`in_sim`], but with a fault-injection plan installed: the
/// simulation's compute and storage models draw faults from a plan seeded
/// by the simulation seed (see `skyrise::sim::faults`). Same seed + same
/// config → bit-identical runs, faults included.
pub fn in_sim_faulted<T: 'static>(
    seed: u64,
    faults: skyrise::sim::FaultConfig,
    f: impl FnOnce(skyrise::sim::SimCtx) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>
        + 'static,
) -> T {
    let (trace_all, metrics_all, offset) = CAPTURE.with(|c| {
        let c = c.borrow();
        (c.trace_all, c.metrics_all, c.seed_offset)
    });
    let seed = seed.wrapping_add(offset);
    let mut sim = skyrise::sim::Sim::new(seed);
    let _plan = sim.install_faults(faults);
    let tracer = trace_all.then(|| sim.install_tracer());
    let registry = metrics_all.then(|| sim.install_metrics());
    let sanitizer = sim.enable_sanitizer();
    let ctx = sim.ctx();
    let h = sim.spawn(f(ctx));
    let end = sim.run();
    finish_sim(seed, end, tracer, &sanitizer, registry);
    h.try_take().expect("experiment completed")
}

/// Like [`in_sim`], but tracing is always on: the closure receives the
/// tracer handle alongside the context (for building per-query profiles).
/// The trace is still collected into the active capture, if any.
pub fn in_sim_traced<T: 'static>(
    seed: u64,
    f: impl FnOnce(
            skyrise::sim::SimCtx,
            Tracer,
        ) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>
        + 'static,
) -> T {
    let (metrics_all, offset) = CAPTURE.with(|c| {
        let c = c.borrow();
        (c.metrics_all, c.seed_offset)
    });
    let seed = seed.wrapping_add(offset);
    let mut sim = skyrise::sim::Sim::new(seed);
    let tracer = sim.install_tracer();
    let registry = metrics_all.then(|| sim.install_metrics());
    let sanitizer = sim.enable_sanitizer();
    let ctx = sim.ctx();
    let h = sim.spawn(f(ctx, tracer.clone()));
    let end = sim.run();
    finish_sim(seed, end, Some(tracer), &sanitizer, registry);
    h.try_take().expect("experiment completed")
}

// ---------------------------------------------------------------------------
// CLI entry points
// ---------------------------------------------------------------------------

/// Output options shared by every experiment binary.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RunOpts {
    /// `--trace-out <path>`: Chrome-trace JSON (+ `.jsonl` sidecar).
    pub trace_out: Option<PathBuf>,
    /// `--metrics-out <path>`: telemetry JSONL (+ `.prom` sidecar).
    pub metrics_out: Option<PathBuf>,
}

/// Parse `--trace-out` / `--metrics-out` (space- or `=`-separated) from an
/// argument list. Unknown arguments abort with a usage message.
pub fn parse_run_opts<I: IntoIterator<Item = String>>(args: I) -> RunOpts {
    let mut opts = RunOpts::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let slot = if arg == "--trace-out" || arg.starts_with("--trace-out=") {
            &mut opts.trace_out
        } else if arg == "--metrics-out" || arg.starts_with("--metrics-out=") {
            &mut opts.metrics_out
        } else {
            eprintln!(
                "unknown argument `{arg}`; usage: [--trace-out <path>] [--metrics-out <path>]"
            );
            std::process::exit(2);
        };
        *slot = match arg.split_once('=') {
            Some((_, path)) => Some(PathBuf::from(path)),
            None => match iter.next() {
                Some(path) => Some(PathBuf::from(path)),
                None => {
                    eprintln!("{arg} requires a path argument");
                    std::process::exit(2);
                }
            },
        };
    }
    opts
}

/// Parse `--trace-out <path>` / `--trace-out=<path>` from an argument list.
/// Unknown arguments abort with a usage message.
pub fn parse_trace_out<I: IntoIterator<Item = String>>(args: I) -> Option<PathBuf> {
    let mut out = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--trace-out" {
            match iter.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace-out requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if let Some(path) = arg.strip_prefix("--trace-out=") {
            out = Some(PathBuf::from(path));
        } else {
            eprintln!("unknown argument `{arg}`; usage: [--trace-out <path>]");
            std::process::exit(2);
        }
    }
    out
}

/// Write a captured trace: Chrome-trace JSON at `path`, JSONL alongside at
/// `<path>.jsonl`. Returns the JSONL path.
pub fn write_traces(path: &Path, summary: &RunSummary) -> std::io::Result<PathBuf> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, summary.chrome_json())?;
    let mut jsonl_path = path.as_os_str().to_owned();
    jsonl_path.push(".jsonl");
    let jsonl_path = PathBuf::from(jsonl_path);
    std::fs::write(&jsonl_path, summary.jsonl())?;
    Ok(jsonl_path)
}

/// Write a telemetry snapshot: JSONL at `path`, Prometheus text exposition
/// alongside at `<path>.prom`. Returns the Prometheus path.
pub fn write_metrics(path: &Path, snapshot: &MetricsSnapshot) -> std::io::Result<PathBuf> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, snapshot.to_jsonl())?;
    let mut prom_path = path.as_os_str().to_owned();
    prom_path.push(".prom");
    let prom_path = PathBuf::from(prom_path);
    std::fs::write(&prom_path, snapshot.to_prometheus())?;
    Ok(prom_path)
}

/// Run one experiment with optional tracing/telemetry and print its
/// summary line: virtual time simulated, wall-clock elapsed, events
/// traced, metrics registered, and where the outputs went.
pub fn run_experiment(
    name: &str,
    run: impl FnOnce() -> ExperimentResult,
    trace_out: Option<&Path>,
    metrics_out: Option<&Path>,
) {
    // Wall time for the human-facing summary line only, never fed into
    // the simulation.
    let wall = std::time::Instant::now();
    let (result, summary) = capture_runs(trace_out.is_some(), metrics_out.is_some(), 0, run);
    finish(&result);
    let mut outputs = vec![format!("{}/{}.json", results_dir().display(), result.id)];
    if let Some(path) = trace_out {
        match write_traces(path, &summary) {
            Ok(jsonl_path) => {
                outputs.push(path.display().to_string());
                outputs.push(jsonl_path.display().to_string());
            }
            Err(e) => eprintln!("  (could not write trace to {}: {e})", path.display()),
        }
    }
    if let Some(path) = metrics_out {
        match write_metrics(path, &summary.metrics) {
            Ok(prom_path) => {
                outputs.push(path.display().to_string());
                outputs.push(prom_path.display().to_string());
            }
            Err(e) => eprintln!("  (could not write metrics to {}: {e})", path.display()),
        }
    }
    println!(
        "[{name}] virtual {:.1}s across {} sims, {} events traced, {} metrics, wall {:.1}s -> {}",
        summary.virtual_secs,
        summary.sims,
        summary.events(),
        summary.metrics.counters.len()
            + summary.metrics.gauges.len()
            + summary.metrics.histograms.len()
            + summary.metrics.timelines.len(),
        wall.elapsed().as_secs_f64(),
        outputs.join(", ")
    );
}

/// Standard `main` body for the single-experiment binaries: parses
/// `--trace-out` / `--metrics-out` and runs the experiment with a
/// summary line.
pub fn run_cli(name: &str, run: impl FnOnce() -> ExperimentResult) {
    let opts = parse_run_opts(std::env::args().skip(1));
    run_experiment(
        name,
        run,
        opts.trace_out.as_deref(),
        opts.metrics_out.as_deref(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_sim_runs_to_completion() {
        let out = in_sim(1, |ctx| {
            Box::pin(async move {
                ctx.sleep(skyrise::sim::SimDuration::from_secs(10)).await;
                ctx.now().as_secs_f64()
            })
        });
        assert_eq!(out, 10.0);
    }

    #[test]
    fn profile_defaults_to_fast() {
        // Unless the caller exported SKYRISE_FULL=1.
        #[allow(clippy::disallowed_methods)]
        if std::env::var("SKYRISE_FULL").is_err() {
            assert!(!full_profile());
        }
    }

    #[test]
    fn capture_collects_traces_and_virtual_time() {
        let (out, summary) = capture_runs(true, false, 0, || {
            in_sim(7, |ctx| {
                Box::pin(async move {
                    let tracer = ctx.tracer();
                    let span = tracer.span(&ctx, "svc", tracer.next_lane(), "work");
                    ctx.sleep(skyrise::sim::SimDuration::from_secs(3)).await;
                    span.end();
                    1u32
                })
            })
        });
        assert_eq!(out, 1);
        assert_eq!(summary.sims, 1);
        assert_eq!(summary.virtual_secs, 3.0);
        assert_eq!(summary.events(), 1);
        assert!(summary.chrome_json().contains("\"work\""));
        assert_eq!(summary.jsonl().lines().count(), 1);
    }

    #[test]
    fn capture_disabled_still_counts_sims() {
        let ((), summary) = capture_runs(false, false, 0, || {
            in_sim(8, |ctx| {
                Box::pin(async move {
                    ctx.sleep(skyrise::sim::SimDuration::from_secs(1)).await;
                })
            })
        });
        assert_eq!(summary.sims, 1);
        assert_eq!(summary.events(), 0);
        assert!(summary.runs.is_empty());
    }

    #[test]
    fn seed_offset_shifts_sim_seeds() {
        fn seed_of(offset: u64) -> u64 {
            let ((), summary) = capture_runs(true, false, offset, || {
                in_sim(100, |ctx| {
                    Box::pin(async move {
                        let tracer = ctx.tracer();
                        tracer.instant(&ctx, "svc", 0, "mark");
                    })
                })
            });
            summary.runs[0].1.run_id().expect("traced")
        }
        assert_eq!(seed_of(0), 100);
        assert_eq!(seed_of(5), 105);
    }

    #[test]
    fn sanitizer_digests_recorded_and_reproducible() {
        fn one(seed: u64) -> RunSummary {
            capture_runs(false, false, 0, || {
                in_sim(seed, |ctx| {
                    Box::pin(async move {
                        ctx.sleep(skyrise::sim::SimDuration::from_secs(2)).await;
                    })
                })
            })
            .1
        }
        let a = one(11);
        let b = one(11);
        assert_eq!(a.digests.len(), 1);
        assert!(a.digests[0].1.events > 0);
        assert_eq!(a.digests, b.digests, "same seed, same digest trail");
        assert_eq!(a.digests[0].1.first_divergence(&b.digests[0].1), None);
    }

    #[test]
    fn trace_out_parsing() {
        assert_eq!(parse_trace_out(Vec::<String>::new()), None);
        assert_eq!(
            parse_trace_out(vec!["--trace-out".into(), "/tmp/t.json".into()]),
            Some(PathBuf::from("/tmp/t.json"))
        );
        assert_eq!(
            parse_trace_out(vec!["--trace-out=/tmp/t.json".into()]),
            Some(PathBuf::from("/tmp/t.json"))
        );
    }

    #[test]
    fn run_opts_parsing() {
        assert_eq!(parse_run_opts(Vec::<String>::new()), RunOpts::default());
        let opts = parse_run_opts(vec![
            "--trace-out".into(),
            "/tmp/t.json".into(),
            "--metrics-out=/tmp/m.jsonl".into(),
        ]);
        assert_eq!(opts.trace_out, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(opts.metrics_out, Some(PathBuf::from("/tmp/m.jsonl")));
    }

    #[test]
    fn metrics_capture_merges_across_sims() {
        let ((), summary) = capture_runs(false, true, 0, || {
            for seed in [21, 22] {
                in_sim(seed, |ctx| {
                    Box::pin(async move {
                        let c = ctx.metrics().counter("test.capture.runs");
                        c.inc();
                        ctx.sleep(skyrise::sim::SimDuration::from_secs(1)).await;
                    })
                });
            }
        });
        assert_eq!(summary.sims, 2);
        assert_eq!(summary.metrics.counters["test.capture.runs"], 2);
        // Executor self-profiling rides along once a registry is live.
        assert!(summary.metrics.counters["sim.executor.polls"] > 0);
    }

    #[test]
    fn telemetry_digest_feeds_the_sanitizer() {
        fn digest_of(metrics: bool, extra: u64) -> u64 {
            let ((), summary) = capture_runs(false, metrics, 0, || {
                in_sim(31, move |ctx| {
                    Box::pin(async move {
                        ctx.metrics().counter("test.sanitizer.value").add(extra);
                        ctx.sleep(skyrise::sim::SimDuration::from_secs(1)).await;
                    })
                })
            });
            summary.digests[0].1.digest
        }
        // Same telemetry, same digest; different telemetry, different
        // digest; telemetry off leaves the baseline digest untouched.
        assert_eq!(digest_of(true, 1), digest_of(true, 1));
        assert_ne!(digest_of(true, 1), digest_of(true, 2));
        assert_eq!(digest_of(false, 1), digest_of(false, 2));
    }
}
