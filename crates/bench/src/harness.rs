//! Parallel experiment runner.
//!
//! The suite is embarrassingly parallel *between* experiments: every
//! simulation is a self-contained single-threaded `Rc`/`RefCell` world,
//! so nothing below the harness needs to be `Send`. The harness exploits
//! exactly that boundary — worker OS threads steal whole experiments from
//! a shared queue, each experiment's simulations run on the thread that
//! stole it (trace/digest capture is thread-local), and the only values
//! crossing threads are plain-data [`CompletedExperiment`]s.
//!
//! Determinism is preserved by construction:
//! * per-experiment seeds are fixed inside the experiment functions, so a
//!   simulation's digest cannot depend on which worker ran it;
//! * traces are serialized to strings *on the worker* (the `Tracer`
//!   handle is `Rc`-based and must not leave its thread);
//! * results are collected into submission-order slots, so reporting
//!   order — and therefore every byte of suite output — is independent
//!   of scheduling. `tests/parallel_determinism.rs` pins the contract:
//!   `--jobs 1` and `--jobs 4` produce byte-identical digests and JSON.

use crate::{capture_runs, finish, results_dir};
use skyrise::micro::ExperimentResult;
use skyrise::sim::{MetricsSnapshot, SanitizerReport};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// An experiment as submitted to the harness. The run function is a plain
/// `fn` pointer: experiments are top-level functions, and fn pointers are
/// `Send` — the closure-free design is what lets jobs cross threads while
/// everything inside a job stays single-threaded.
pub struct ExperimentJob {
    /// Experiment name (suite table key, also used in trace file names).
    pub name: &'static str,
    /// The experiment body; runs entirely on one worker thread.
    pub run: fn() -> ExperimentResult,
    /// When set, tracing is enabled for every simulation in the job and
    /// the merged Chrome-trace / JSONL strings are returned in the
    /// completed job for the reporter to write at this path.
    pub trace_out: Option<PathBuf>,
    /// When set, a metric registry is installed in every simulation and
    /// the merged snapshot is returned in the completed job (the suite
    /// binaries merge further across experiments for `--metrics-out`).
    pub metrics: bool,
}

/// Serialized trace artifacts produced on the worker thread. `Tracer`
/// handles are `Rc`-based and cannot leave their thread; strings can.
pub struct TraceArtifacts {
    /// Where the reporter should write the Chrome-trace JSON.
    pub path: PathBuf,
    /// Merged Chrome-trace JSON over the job's simulations.
    pub chrome_json: String,
    /// Flat JSONL event log over the job's simulations.
    pub jsonl: String,
}

/// Everything a finished experiment produced, as plain `Send` data.
pub struct CompletedExperiment {
    /// Name the job was submitted under.
    pub name: &'static str,
    /// The experiment's result tables.
    pub result: ExperimentResult,
    /// Per-simulation sanitizer digests, in execution order. The parallel
    /// determinism contract compares these against a serial run.
    pub digests: Vec<(String, SanitizerReport)>,
    /// Simulations executed.
    pub sims: u64,
    /// Total virtual time simulated (seconds).
    pub virtual_secs: f64,
    /// Trace events recorded (0 when tracing was off).
    pub events: u64,
    /// Serialized traces, when the job asked for them.
    pub trace: Option<TraceArtifacts>,
    /// Merged telemetry snapshot (empty when the job ran without
    /// metrics). Plain data, so it crosses the worker-thread boundary.
    pub metrics: MetricsSnapshot,
    /// Wall-clock seconds the job took on its worker.
    pub wall_secs: f64,
}

/// Default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run one job to completion on the current thread.
fn run_one(job: ExperimentJob) -> CompletedExperiment {
    // Host-side wall clock for the human-facing summary line only; never
    // fed into a simulation.
    let wall = std::time::Instant::now();
    let (result, summary) = capture_runs(job.trace_out.is_some(), job.metrics, 0, job.run);
    let trace = job.trace_out.map(|path| TraceArtifacts {
        path,
        chrome_json: summary.chrome_json(),
        jsonl: summary.jsonl(),
    });
    CompletedExperiment {
        name: job.name,
        result,
        events: summary.events(),
        digests: summary.digests,
        sims: summary.sims,
        virtual_secs: summary.virtual_secs,
        trace,
        metrics: summary.metrics,
        wall_secs: wall.elapsed().as_secs_f64(),
    }
}

/// Run `jobs` across up to `workers` OS threads and return the completed
/// experiments **in submission order**, regardless of which worker finished
/// when. `workers <= 1` runs everything serially on the calling thread —
/// the baseline the parallel determinism test compares against.
///
/// A panic inside any experiment propagates out of this call once the
/// remaining workers drain (std scoped-thread semantics).
pub fn run_jobs(jobs: Vec<ExperimentJob>, workers: usize) -> Vec<CompletedExperiment> {
    let workers = workers.clamp(1, jobs.len().max(1));
    if workers <= 1 {
        return jobs.into_iter().map(run_one).collect();
    }
    let queue: Mutex<VecDeque<(usize, ExperimentJob)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<CompletedExperiment>>> = {
        let n = queue.lock().expect("job queue poisoned").len();
        (0..n).map(|_| Mutex::new(None)).collect()
    };
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Steal the next pending experiment; holding the lock only
                // for the pop keeps workers out of each other's way.
                let next = queue.lock().expect("job queue poisoned").pop_front();
                let Some((index, job)) = next else { break };
                let done = run_one(job);
                *slots[index].lock().expect("result slot poisoned") = Some(done);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without completing its job")
        })
        .collect()
}

/// Print and persist one completed experiment exactly as the serial
/// harness would: result tables via [`finish`], traces to their requested
/// paths, and the one-line summary. Call in submission order.
pub fn report(done: &CompletedExperiment) {
    finish(&done.result);
    let mut outputs = vec![format!(
        "{}/{}.json",
        results_dir().display(),
        done.result.id
    )];
    if let Some(trace) = &done.trace {
        match write_trace_strings(&trace.path, &trace.chrome_json, &trace.jsonl) {
            Ok(jsonl_path) => {
                outputs.push(trace.path.display().to_string());
                outputs.push(jsonl_path.display().to_string());
            }
            Err(e) => eprintln!("  (could not write trace to {}: {e})", trace.path.display()),
        }
    }
    let n_metrics = done.metrics.counters.len()
        + done.metrics.gauges.len()
        + done.metrics.histograms.len()
        + done.metrics.timelines.len();
    println!(
        "[{}] virtual {:.1}s across {} sims, {} events traced, {} metrics, wall {:.1}s -> {}",
        done.name,
        done.virtual_secs,
        done.sims,
        done.events,
        n_metrics,
        done.wall_secs,
        outputs.join(", ")
    );
}

/// Write pre-serialized trace strings: Chrome JSON at `path`, JSONL at
/// `<path>.jsonl`. Returns the JSONL path.
pub fn write_trace_strings(
    path: &Path,
    chrome_json: &str,
    jsonl: &str,
) -> std::io::Result<PathBuf> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_json)?;
    let mut jsonl_path = path.as_os_str().to_owned();
    jsonl_path.push(".jsonl");
    let jsonl_path = PathBuf::from(jsonl_path);
    std::fs::write(&jsonl_path, jsonl)?;
    Ok(jsonl_path)
}

// ---------------------------------------------------------------------------
// Suite CLI arguments
// ---------------------------------------------------------------------------

/// Arguments shared by the suite binaries: `--trace-out <path>`,
/// `--metrics-out <path>`, `--jobs N` (0 or omitted → [`default_jobs`]),
/// and `--shard i/n` (run only every n-th experiment, offset i).
pub struct SuiteArgs {
    /// Base path for per-experiment trace files, when tracing.
    pub trace_out: Option<PathBuf>,
    /// Path for the suite-merged telemetry JSONL (+ `.prom` sidecar).
    pub metrics_out: Option<PathBuf>,
    /// Worker thread count.
    pub jobs: usize,
    /// `(index, count)` shard selector; `None` runs everything.
    pub shard: Option<(usize, usize)>,
}

/// Parse an `i/n` shard spec: `i < n`, `n >= 1`.
fn parse_shard(v: &str) -> Option<(usize, usize)> {
    let (i, n) = v.split_once('/')?;
    let (i, n) = (i.parse::<usize>().ok()?, n.parse::<usize>().ok()?);
    (n >= 1 && i < n).then_some((i, n))
}

/// Keep only this shard's experiments: job `k` runs on shard `k % n == i`.
/// The modulo layout balances long- and short-running experiments across
/// shards better than contiguous slices (neighbours in `ALL` tend to have
/// similar cost). `None` keeps everything.
pub fn apply_shard(jobs: Vec<ExperimentJob>, shard: Option<(usize, usize)>) -> Vec<ExperimentJob> {
    match shard {
        None => jobs,
        Some((index, count)) => jobs
            .into_iter()
            .enumerate()
            .filter(|(k, _)| k % count == index)
            .map(|(_, job)| job)
            .collect(),
    }
}

/// Parse suite arguments; unknown arguments abort with a usage message.
pub fn parse_suite_args<I: IntoIterator<Item = String>>(args: I) -> SuiteArgs {
    let mut out = SuiteArgs {
        trace_out: None,
        metrics_out: None,
        jobs: default_jobs(),
        shard: None,
    };
    let mut iter = args.into_iter();
    let usage = "usage: [--trace-out <path>] [--metrics-out <path>] [--jobs N] [--shard i/n]";
    let set_jobs = |v: &str| match v.parse::<usize>() {
        Ok(0) => default_jobs(),
        Ok(n) => n,
        Err(_) => {
            eprintln!("--jobs requires a non-negative integer; {usage}");
            std::process::exit(2);
        }
    };
    let set_shard = |v: &str| match parse_shard(v) {
        Some(shard) => shard,
        None => {
            eprintln!("--shard requires `i/n` with i < n; {usage}");
            std::process::exit(2);
        }
    };
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| -> Option<String> {
            if arg == flag {
                match iter.next() {
                    Some(v) => Some(v),
                    None => {
                        eprintln!("{flag} requires an argument; {usage}");
                        std::process::exit(2);
                    }
                }
            } else {
                arg.strip_prefix(flag)
                    .and_then(|rest| rest.strip_prefix('='))
                    .map(str::to_string)
            }
        };
        if let Some(path) = take("--trace-out") {
            out.trace_out = Some(PathBuf::from(path));
        } else if let Some(path) = take("--metrics-out") {
            out.metrics_out = Some(PathBuf::from(path));
        } else if let Some(v) = take("--jobs") {
            out.jobs = set_jobs(&v);
        } else if let Some(v) = take("--shard") {
            out.shard = Some(set_shard(&v));
        } else {
            eprintln!("unknown argument `{arg}`; {usage}");
            std::process::exit(2);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise::micro::ExperimentResult;

    fn tiny(id: &str, scale: u64) -> ExperimentResult {
        let mut r = ExperimentResult::new(id, "tiny harness probe");
        let secs = crate::in_sim(42, move |ctx| {
            Box::pin(async move {
                ctx.sleep(skyrise::sim::SimDuration::from_secs(scale)).await;
                ctx.now().as_secs_f64()
            })
        });
        r.scalars.insert("virtual_secs".into(), secs);
        r
    }

    fn job_a() -> ExperimentResult {
        tiny("harness_a", 3)
    }
    fn job_b() -> ExperimentResult {
        tiny("harness_b", 5)
    }
    fn job_c() -> ExperimentResult {
        tiny("harness_c", 7)
    }

    fn jobs() -> Vec<ExperimentJob> {
        vec![
            ExperimentJob {
                name: "a",
                run: job_a,
                trace_out: None,
                metrics: false,
            },
            ExperimentJob {
                name: "b",
                run: job_b,
                trace_out: None,
                metrics: false,
            },
            ExperimentJob {
                name: "c",
                run: job_c,
                trace_out: None,
                metrics: false,
            },
        ]
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 8] {
            let done = run_jobs(jobs(), workers);
            let names: Vec<_> = done.iter().map(|d| d.name).collect();
            assert_eq!(names, ["a", "b", "c"], "workers={workers}");
            assert_eq!(done[1].result.scalars["virtual_secs"], 5.0);
        }
    }

    #[test]
    fn parallel_digests_match_serial() {
        let serial = run_jobs(jobs(), 1);
        let parallel = run_jobs(jobs(), 3);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.sims, p.sims);
            assert_eq!(s.digests, p.digests, "digest diverged for {}", s.name);
        }
    }

    #[test]
    fn suite_args_parsing() {
        let args = parse_suite_args(vec!["--jobs".into(), "4".into()]);
        assert_eq!(args.jobs, 4);
        assert_eq!(args.trace_out, None);
        assert_eq!(args.metrics_out, None);
        assert_eq!(args.shard, None);
        let args = parse_suite_args(vec!["--jobs=2".into(), "--trace-out=/tmp/t.json".into()]);
        assert_eq!(args.jobs, 2);
        assert_eq!(args.trace_out, Some(PathBuf::from("/tmp/t.json")));
        // 0 falls back to the hardware default.
        let args = parse_suite_args(vec!["--jobs=0".into()]);
        assert!(args.jobs >= 1);
        let args = parse_suite_args(vec![
            "--metrics-out=/tmp/m.jsonl".into(),
            "--shard".into(),
            "1/3".into(),
        ]);
        assert_eq!(args.metrics_out, Some(PathBuf::from("/tmp/m.jsonl")));
        assert_eq!(args.shard, Some((1, 3)));
    }

    #[test]
    fn shard_spec_validation() {
        assert_eq!(parse_shard("0/1"), Some((0, 1)));
        assert_eq!(parse_shard("2/3"), Some((2, 3)));
        assert_eq!(parse_shard("3/3"), None, "index out of range");
        assert_eq!(parse_shard("1/0"), None, "zero shards");
        assert_eq!(parse_shard("1"), None);
        assert_eq!(parse_shard("a/b"), None);
    }

    #[test]
    fn sharding_partitions_jobs_without_overlap() {
        let all: Vec<&str> = jobs().iter().map(|j| j.name).collect();
        let mut seen = Vec::new();
        for i in 0..2 {
            for job in apply_shard(jobs(), Some((i, 2))) {
                seen.push(job.name);
            }
        }
        seen.sort_unstable();
        let mut expect = all.clone();
        expect.sort_unstable();
        assert_eq!(seen, expect, "shards cover every job exactly once");
        assert_eq!(apply_shard(jobs(), None).len(), all.len());
    }

    #[test]
    fn jobs_carry_metrics_snapshots() {
        fn probe() -> ExperimentResult {
            let r = ExperimentResult::new("harness_metrics", "metrics probe");
            crate::in_sim(50, |ctx| {
                Box::pin(async move {
                    ctx.metrics().counter("test.harness.probe").inc();
                    ctx.sleep(skyrise::sim::SimDuration::from_secs(1)).await;
                })
            });
            r
        }
        let done = run_jobs(
            vec![ExperimentJob {
                name: "m",
                run: probe,
                trace_out: None,
                metrics: true,
            }],
            1,
        );
        assert_eq!(done[0].metrics.counters["test.harness.probe"], 1);
        let off = run_jobs(
            vec![ExperimentJob {
                name: "m",
                run: probe,
                trace_out: None,
                metrics: false,
            }],
            1,
        );
        assert!(off[0].metrics.is_empty());
    }
}
