//! Ablations of the design choices DESIGN.md calls out, plus the paper's
//! "experiments not shown for brevity" (Sec. 4.4.1).

use crate::datasets::load_paper_datasets;
use crate::in_sim;
use skyrise::engine::{queries, Sink};
use skyrise::micro::{text_table, ExperimentResult};
use skyrise::prelude::*;
use skyrise::storage::RetryPolicy;
use std::rc::Rc;

/// Ablation A: shuffle write combining (the paper's Sec. 5.3.2 technique).
/// Q12 with combine ∈ {1, 2, 4, 8}: requests, mean object size, runtime,
/// request cost.
pub fn ablation_combining() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ablation_combining",
        "Shuffle write combining: requests, object sizes, runtime, cost (TPC-H Q12)",
    );
    let mut rows = vec![vec![
        "combine".to_string(),
        "Query [s]".into(),
        "Storage requests".into(),
        "Mean shuffle obj [KiB]".into(),
        "Request cost [c]".into(),
    ]];
    for combine in [1u32, 2, 4, 8] {
        let (secs, requests, mean_kib, cost_cents) = in_sim(0xAB10 + combine as u64, move |ctx| {
            Box::pin(async move {
                let meter = shared_meter();
                let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
                load_paper_datasets(&storage, 0.01, 0.08).unwrap();
                let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
                let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
                engine.warm(48).await;
                let mut plan = queries::q12();
                for p in plan.pipelines.iter_mut() {
                    if p.id != 3 {
                        p.fragments = Some(32);
                    }
                    if let Sink::ShuffleWrite { combine: c, .. } = &mut p.sink {
                        *c = combine;
                    }
                }
                let response = engine.run_default(&plan).await.expect("q12");
                let shuffle_bytes: u64 = response
                    .stages
                    .iter()
                    .map(|s| s.logical_bytes_written)
                    .sum();
                let objects: u64 = response
                    .stages
                    .iter()
                    .filter(|s| s.downstream_fragments > 0)
                    .map(|s| {
                        s.fragments as u64
                            * (s.downstream_fragments as u64).div_ceil(combine as u64)
                    })
                    .sum();
                let report = meter.borrow().report();
                (
                    response.runtime_secs,
                    response.total_requests(),
                    shuffle_bytes as f64 / objects.max(1) as f64 / KIB as f64,
                    report.storage_request_usd * 100.0,
                )
            })
        });
        rows.push(vec![
            combine.to_string(),
            format!("{secs:.2}"),
            requests.to_string(),
            format!("{mean_kib:.1}"),
            format!("{cost_cents:.3}"),
        ]);
        r.scalar(&format!("combine{combine}_requests"), requests as f64);
        r.scalar(&format!("combine{combine}_secs"), secs);
        r.scalar(&format!("combine{combine}_mean_obj_kib"), mean_kib);
        r.scalar(&format!("combine{combine}_cost_cents"), cost_cents);
    }
    println!("{}", text_table(&rows));
    r
}

/// Ablation B: binary size vs coldstart ("we keep binary sizes small
/// (< 10 MiB)", paper Sec. 3.2). Measures cluster startup for 64 cold
/// workers at several artifact sizes.
pub fn ablation_binary_size() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ablation_binary_size",
        "Deployment artifact size vs cold cluster startup",
    );
    let mut rows = vec![vec![
        "Binary [MiB]".to_string(),
        "64-worker cold startup [s]".into(),
    ]];
    for mib in [2u64, 8, 32, 128, 256] {
        let secs = in_sim(0xAB20 + mib, move |ctx| {
            Box::pin(async move {
                let meter = shared_meter();
                let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
                skyrise::micro::minimal::deploy_minimal(&platform, "f", mib << 20);
                let t0 = ctx.now();
                let handles: Vec<_> = (0..64)
                    .map(|_| {
                        let p = Rc::clone(&platform);
                        ctx.spawn(async move {
                            p.invoke("f", String::new()).await.expect("invokes");
                        })
                    })
                    .collect();
                join_all(handles).await;
                (ctx.now() - t0).as_secs_f64()
            })
        });
        rows.push(vec![mib.to_string(), format!("{secs:.2}")]);
        r.scalar(&format!("startup_{mib}mib_secs"), secs);
    }
    println!("{}", text_table(&rows));
    r
}

/// The paper's extra observations (Sec. 4.4.1, "experiments not shown for
/// brevity"): (1) prefix-hashed key naming does not change IOPS scaling;
/// (2) sustained read load does not raise write IOPS beyond a single
/// partition's 3.5K.
pub fn extra_observations() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "extra_observations",
        "Prefix naming is irrelevant to IOPS scaling; write IOPS never scale",
    );

    // (1) Same sustained read overload, plain vs hash-prefixed keys.
    for (arm, hashed) in [(0u64, false), (1, true)] {
        let partitions = in_sim(0xAB30 + arm, move |ctx| {
            Box::pin(async move {
                let meter = shared_meter();
                let mut cfg = S3Config::standard();
                cfg.read_iops_per_partition *= 0.1;
                cfg.write_iops *= 0.1;
                cfg.split_interval = SimDuration::from_secs(60);
                let per_partition = cfg.read_iops_per_partition;
                let bucket = S3Bucket::new(ctx.clone(), meter.clone(), cfg);
                let storage = Storage::S3(Rc::clone(&bucket));
                for i in 0..64 {
                    let key = if hashed {
                        format!(
                            "{:016x}/obj{i}",
                            (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
                        )
                    } else {
                        format!("data/obj{i}")
                    };
                    storage.backdoor_put(&key, Blob::synthetic(1024));
                }
                let keys: Vec<String> = if hashed {
                    (0..64)
                        .map(|i| {
                            format!(
                                "{:016x}/obj{i}",
                                (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
                            )
                        })
                        .collect()
                } else {
                    (0..64).map(|i| format!("data/obj{i}")).collect()
                };
                let client =
                    RetryingClient::new(storage.clone(), ctx.clone(), RetryPolicy::eager());
                // 4 minutes of sustained slight overload.
                let start = ctx.now();
                let mut handles = Vec::new();
                let mut window_start = start;
                for _ in 0..24 {
                    let rate = bucket.partition_count() as f64 * per_partition * 1.02;
                    let n = (rate * 10.0) as u64;
                    for i in 0..n {
                        let at = window_start + SimDuration::from_secs_f64(i as f64 / rate);
                        let ctx2 = ctx.clone();
                        let client = client.clone();
                        let key = keys[(i % 64) as usize].clone();
                        handles.push(ctx.spawn(async move {
                            ctx2.sleep_until(at).await;
                            let _ = client.get(&key, 1024, &RequestOpts::default()).await;
                        }));
                    }
                    window_start += SimDuration::from_secs(10);
                    ctx.sleep_until(window_start).await;
                }
                join_all(handles).await;
                bucket.partition_count() as f64
            })
        });
        let label = if hashed {
            "hashed_prefix"
        } else {
            "plain_prefix"
        };
        r.scalar(&format!("{label}_partitions"), partitions);
    }

    // (2) Sustained read load running while write IOPS are probed.
    let (write_iops_cold, write_iops_during_reads) = in_sim(0xAB40, |ctx| {
        Box::pin(async move {
            let meter = shared_meter();
            let mut cfg = S3Config::standard();
            cfg.read_iops_per_partition *= 0.1;
            cfg.write_iops *= 0.1;
            cfg.split_interval = SimDuration::from_secs(60);
            let write_quota = cfg.write_iops;
            let bucket = S3Bucket::new(ctx.clone(), meter.clone(), cfg);
            // Pretend heavy read history has scaled the bucket out.
            bucket.warm_to(5);
            let storage = Storage::S3(Rc::clone(&bucket));
            storage.backdoor_put("k", Blob::synthetic(1024));

            let probe_writes = |label: u64| {
                let ctx = ctx.clone();
                let storage = storage.clone();
                async move {
                    let _ = label;
                    let t0 = ctx.now();
                    let rate = 1_000.0f64; // far above the 350-scaled quota
                    let n = (rate * 10.0) as u64;
                    let ok = Rc::new(std::cell::Cell::new(0u64));
                    let handles: Vec<_> = (0..n)
                        .map(|i| {
                            let at = t0 + SimDuration::from_secs_f64(i as f64 / rate);
                            let ctx2 = ctx.clone();
                            let storage = storage.clone();
                            let ok = Rc::clone(&ok);
                            ctx.spawn(async move {
                                ctx2.sleep_until(at).await;
                                if storage
                                    .put(
                                        &format!("w/{i}"),
                                        Blob::synthetic(256),
                                        &RequestOpts::default(),
                                    )
                                    .await
                                    .is_ok()
                                {
                                    ok.set(ok.get() + 1);
                                }
                            })
                        })
                        .collect();
                    join_all(handles).await;
                    ok.get() as f64 / 10.0
                }
            };
            let cold = probe_writes(0).await;
            ctx.sleep(SimDuration::from_secs(30)).await;
            let during = probe_writes(1).await;
            let _ = write_quota;
            (cold, during)
        })
    });
    r.scalar("write_iops_baseline", write_iops_cold);
    r.scalar("write_iops_with_5_read_partitions", write_iops_during_reads);

    let mut rows = vec![vec!["Observation".to_string(), "Value".into()]];
    rows.push(vec![
        "partitions (plain keys)".into(),
        format!("{}", r.scalars["plain_prefix_partitions"]),
    ]);
    rows.push(vec![
        "partitions (hash-prefixed keys)".into(),
        format!("{}", r.scalars["hashed_prefix_partitions"]),
    ]);
    rows.push(vec![
        "write IOPS (1 partition, scaled)".into(),
        format!("{:.0}", write_iops_cold),
    ]);
    rows.push(vec![
        "write IOPS (5 read partitions, scaled)".into(),
        format!("{:.0}", write_iops_during_reads),
    ]);
    println!("{}", text_table(&rows));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn combining_cuts_requests_and_grows_objects() {
        let r = ablation_combining();
        let req1 = r.scalars["combine1_requests"];
        let req8 = r.scalars["combine8_requests"];
        assert!(req8 < 0.7 * req1, "requests {req1} -> {req8}");
        let obj1 = r.scalars["combine1_mean_obj_kib"];
        let obj8 = r.scalars["combine8_mean_obj_kib"];
        assert!(obj8 > 2.5 * obj1, "object size {obj1} -> {obj8}");
        let c1 = r.scalars["combine1_cost_cents"];
        let c8 = r.scalars["combine8_cost_cents"];
        assert!(c8 < c1, "cost {c1} -> {c8}");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn small_binaries_start_clusters_faster() {
        let r = ablation_binary_size();
        let small = r.scalars["startup_2mib_secs"];
        let big = r.scalars["startup_256mib_secs"];
        assert!(big > small + 4.0, "{small} vs {big}");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn extra_observations_hold() {
        let r = extra_observations();
        // Prefix naming is irrelevant.
        assert_eq!(
            r.scalars["plain_prefix_partitions"],
            r.scalars["hashed_prefix_partitions"]
        );
        assert!(r.scalars["plain_prefix_partitions"] >= 3.0);
        // Write IOPS stay at a single partition's capacity (350 scaled).
        let base = r.scalars["write_iops_baseline"];
        let during = r.scalars["write_iops_with_5_read_partitions"];
        assert!((base - during).abs() / base < 0.15, "{base} vs {during}");
        assert!(base < 500.0, "writes never scale: {base}");
    }
}
