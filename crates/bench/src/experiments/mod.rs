//! Experiment implementations, one function per paper table/figure.

pub mod ablations;
pub mod app_figs;
pub mod app_tables;
pub mod net_figs;
pub mod reliability;
pub mod static_tables;
pub mod storage_figs;

pub use ablations::{ablation_binary_size, ablation_combining, extra_observations};
pub use app_figs::{fig14, fig15};
pub use app_tables::{table04, table05, table06};
pub use net_figs::{fig05, fig06, fig07};
pub use reliability::reliability;
pub use static_tables::{table01, table02, table03, table07, table08};
pub use storage_figs::{fig08, fig09, fig10, fig11, fig12, fig13};
