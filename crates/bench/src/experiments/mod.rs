//! Experiment implementations, one function per paper table/figure.

pub mod ablations;
pub mod app_figs;
pub mod app_tables;
pub mod net_figs;
pub mod reliability;
pub mod static_tables;
pub mod storage_figs;

use skyrise::micro::ExperimentResult;

pub use ablations::{ablation_binary_size, ablation_combining, extra_observations};
pub use app_figs::{fig14, fig15};
pub use app_tables::{table04, table05, table06};
pub use net_figs::{fig05, fig06, fig07};
pub use reliability::reliability;
pub use static_tables::{table01, table02, table03, table07, table08};
pub use storage_figs::{fig08, fig09, fig10, fig11, fig12, fig13};

/// The complete suite, in paper order. The single source of truth for
/// `all_experiments`, the determinism sweep, and the parallel-determinism
/// test — so none of them can drift out of sync with a new experiment.
pub const ALL: &[(&str, fn() -> ExperimentResult)] = &[
    ("table01", table01),
    ("table02", table02),
    ("table03", table03),
    ("table04", table04),
    ("fig05", fig05),
    ("fig06", fig06),
    ("fig07", fig07),
    ("fig08", fig08),
    ("fig09", fig09),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("fig15", fig15),
    ("table05", table05),
    ("table06", table06),
    ("table07", table07),
    ("table08", table08),
    ("reliability", reliability),
    ("ablation_combining", ablation_combining),
    ("ablation_binary_size", ablation_binary_size),
    ("extra_observations", extra_observations),
];
