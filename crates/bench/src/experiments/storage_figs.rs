//! Figures 8–13: serverless storage characterisation.
//!
//! The long-running S3 partition-scaling experiments run **time- and
//! IOPS-scaled** in the default fast profile (split interval 80 s instead
//! of 315 s, partition IOPS scaled down) and the reported series are
//! converted back to paper scale; `SKYRISE_FULL=1` runs them unscaled.

use crate::{full_profile, in_sim};
use skyrise::micro::{
    ascii_chart, run_closed_loop, text_table, ExperimentResult, NamedSeries, StorageIoConfig,
};
use skyrise::prelude::*;
use skyrise::pricing::{shared_meter, StoragePricing, StorageService};
use skyrise::storage::{EfsAccount, EfsConfig, RetryPolicy};
use std::rc::Rc;

fn client_nic_factory() -> Rc<dyn Fn() -> SharedNic> {
    // The paper's storage clients: c6gn.2xlarge (25 Gbps burst).
    Rc::new(|| {
        let spec = skyrise::pricing::ec2_instance("c6gn.2xlarge").expect("catalog");
        skyrise::compute::nic_for(&spec)
    })
}

fn make_storage(ctx: &SimCtx, meter: &skyrise::pricing::SharedMeter, which: usize) -> Storage {
    match which {
        0 => Storage::S3(S3Bucket::standard(ctx, meter)),
        1 => Storage::S3(S3Bucket::express(ctx, meter)),
        2 => Storage::Dynamo(DynamoTable::on_demand(ctx, meter)),
        _ => Storage::Efs(EfsFilesystem::elastic(ctx, meter)),
    }
}

const SERVICE_NAMES: [&str; 4] = ["S3 Standard", "S3 Express", "DynamoDB", "EFS"];

/// Fig. 8: aggregated read/write throughput for 1–128 client VMs.
pub fn fig08() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig08",
        "Aggregated storage throughput for varying client VM counts",
    );
    let clients: &[usize] = if full_profile() {
        &[1, 4, 16, 64, 128]
    } else {
        &[1, 8, 32, 128]
    };
    let duration = SimDuration::from_secs(if full_profile() { 30 } else { 6 });
    r.param("clients", format!("{clients:?}"));

    for (svc_idx, svc_name) in SERVICE_NAMES.iter().enumerate() {
        // Object sizes: 64 MiB on S3, the 400 KiB maximum on DynamoDB,
        // 4 MiB files on EFS (paper Sec. 4.3.1).
        let object_bytes: u64 = match svc_idx {
            0 | 1 => 64 << 20,
            2 => 400 << 10,
            _ => 4 << 20,
        };
        for write in [false, true] {
            let mut points = Vec::new();
            for (ci, &n) in clients.iter().enumerate() {
                let seed = 0xF800 + (svc_idx * 100 + ci * 2 + write as usize) as u64;
                let bytes_per_sec = in_sim(seed, move |ctx| {
                    Box::pin(async move {
                        let meter = shared_meter();
                        let storage = make_storage(&ctx, &meter, svc_idx);
                        let cfg = StorageIoConfig {
                            clients: n,
                            threads_per_client: 32,
                            object_bytes,
                            write,
                            duration,
                            client_nic: Some(client_nic_factory()),
                            keyspace_per_thread: 2,
                        };
                        run_closed_loop(&ctx, &storage, &cfg).await.bytes_per_sec
                    })
                });
                points.push((n as f64, bytes_per_sec / GIB as f64));
            }
            let dir = if write { "write" } else { "read" };
            r.scalar(
                &format!("{}_{dir}_gib_s_at_max_clients", svc_name.replace(' ', "_")),
                points.last().expect("points").1,
            );
            r.push_series(NamedSeries::new(&format!("{svc_name} {dir} GiB/s"), points));
        }
    }
    println!("{}", ascii_chart(&r.series, 90, 16));
    r
}

/// Fig. 9: operations per second and container-level quotas per service
/// (EFS with one and two filesystems).
pub fn fig09() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig09",
        "IOPS per serverless storage service with container quotas",
    );
    let duration = SimDuration::from_secs(if full_profile() { 40 } else { 15 });

    struct Arm {
        name: &'static str,
        read_quota: f64,
        write_quota: f64,
        fs_count: usize,
        svc: usize,
    }
    let arms = [
        Arm {
            name: "S3 Standard",
            read_quota: 5_500.0,
            write_quota: 3_500.0,
            fs_count: 1,
            svc: 0,
        },
        Arm {
            name: "S3 Express",
            read_quota: 220_000.0,
            write_quota: 42_000.0,
            fs_count: 1,
            svc: 1,
        },
        Arm {
            name: "DynamoDB",
            read_quota: 12_000.0,
            write_quota: 4_000.0,
            fs_count: 1,
            svc: 2,
        },
        Arm {
            name: "EFS-1",
            read_quota: 55_000.0,
            write_quota: 25_000.0,
            fs_count: 1,
            svc: 3,
        },
        Arm {
            name: "EFS-2",
            read_quota: 55_000.0,
            write_quota: 25_000.0,
            fs_count: 2,
            svc: 3,
        },
    ];

    let mut rows = vec![vec![
        "Service".to_string(),
        "Read IOPS".into(),
        "Write IOPS".into(),
        "Read quota".into(),
        "Write quota".into(),
    ]];
    for (ai, arm) in arms.iter().enumerate() {
        let mut measured = [0.0f64; 2];
        for (wi, write) in [false, true].into_iter().enumerate() {
            let fs_count = arm.fs_count;
            let svc = arm.svc;
            let seed = 0xF900 + (ai * 2 + wi) as u64;
            measured[wi] = in_sim(seed, move |ctx| {
                Box::pin(async move {
                    let meter = shared_meter();
                    // 64 clients x 32 threads of 1 KiB requests.
                    let cfg = StorageIoConfig {
                        clients: 64,
                        threads_per_client: 32,
                        object_bytes: 1024,
                        write,
                        duration,
                        client_nic: None,
                        keyspace_per_thread: 4,
                    };
                    if svc == 3 {
                        // EFS arms share an account-level ceiling.
                        let efs_cfg = EfsConfig::default();
                        let account = EfsAccount::new(&efs_cfg);
                        let filesystems: Vec<_> = (0..fs_count)
                            .map(|_| {
                                EfsFilesystem::new(
                                    ctx.clone(),
                                    meter.clone(),
                                    efs_cfg.clone(),
                                    Some(account.clone()),
                                )
                            })
                            .collect();
                        // Round-robin threads across filesystems: run one
                        // closed loop per filesystem with a client share.
                        let mut total = 0.0;
                        let share = (64 / fs_count).max(1);
                        for fs in filesystems {
                            let cfg = StorageIoConfig {
                                clients: share,
                                ..cfg.clone()
                            };
                            total += run_closed_loop(&ctx, &Storage::Efs(fs), &cfg)
                                .await
                                .ops_per_sec;
                        }
                        total
                    } else {
                        let storage = make_storage(&ctx, &meter, svc);
                        run_closed_loop(&ctx, &storage, &cfg).await.ops_per_sec
                    }
                })
            });
        }
        rows.push(vec![
            arm.name.into(),
            format!("{:.0}", measured[0]),
            format!("{:.0}", measured[1]),
            format!("{:.0}", arm.read_quota * arm.fs_count as f64),
            format!("{:.0}", arm.write_quota * arm.fs_count as f64),
        ]);
        r.scalar(
            &format!("{}_read_iops", arm.name.replace([' ', '-'], "_")),
            measured[0],
        );
        r.scalar(
            &format!("{}_write_iops", arm.name.replace([' ', '-'], "_")),
            measured[1],
        );
    }
    println!("{}", text_table(&rows));
    r
}

/// Fig. 10: request-latency distribution per service.
pub fn fig10() -> ExperimentResult {
    let mut r = ExperimentResult::new("fig10", "Latency distribution of storage requests");
    let per_service: u64 = if full_profile() { 1_000_000 } else { 60_000 };
    r.param("requests_per_service", per_service);

    let mut rows = vec![vec![
        "Service".to_string(),
        "dir".into(),
        "p50 [ms]".into(),
        "p95 [ms]".into(),
        "p99 [ms]".into(),
        "max [ms]".into(),
    ]];
    for (svc_idx, svc_name) in SERVICE_NAMES.iter().enumerate() {
        for write in [false, true] {
            let seed = 0xFA00 + (svc_idx * 2 + write as usize) as u64;
            let summary = in_sim(seed, move |ctx| {
                Box::pin(async move {
                    let meter = shared_meter();
                    let storage = make_storage(&ctx, &meter, svc_idx);
                    // 10 clients using the synchronous APIs (paper 4.3.3):
                    // pace requests below any IOPS limit.
                    let mut hist = skyrise::sim::Histogram::new();
                    let per_thread = per_service / 10;
                    let handles: Vec<_> = (0..10u64)
                        .map(|t| {
                            let ctx2 = ctx.clone();
                            let storage = storage.clone();
                            ctx.spawn(async move {
                                let mut h = skyrise::sim::Histogram::new();
                                let opts = RequestOpts::default();
                                let key = format!("lat/{t}");
                                storage.backdoor_put(&key, Blob::synthetic(1024));
                                for i in 0..per_thread {
                                    let t0 = ctx2.now();
                                    let out = if write {
                                        storage
                                            .put(&key, Blob::synthetic(1024), &opts)
                                            .await
                                            .map(|_| ())
                                    } else {
                                        storage.get(&key, &opts).await.map(|_| ())
                                    };
                                    if out.is_ok() {
                                        h.record((ctx2.now() - t0).as_secs_f64());
                                    }
                                    // Small think time keeps offered load
                                    // well below quotas.
                                    if i % 8 == 7 {
                                        ctx2.sleep(SimDuration::from_millis(15)).await;
                                    }
                                }
                                h
                            })
                        })
                        .collect();
                    for h in join_all(handles).await {
                        hist.merge(&h);
                    }
                    hist.summary()
                })
            });
            let dir = if write { "write" } else { "read" };
            rows.push(vec![
                svc_name.to_string(),
                dir.into(),
                format!("{:.1}", summary.p50 * 1e3),
                format!("{:.1}", summary.p95 * 1e3),
                format!("{:.1}", summary.p99 * 1e3),
                format!("{:.0}", summary.max * 1e3),
            ]);
            r.scalar(
                &format!("{}_{dir}_p50_ms", svc_name.replace(' ', "_")),
                summary.p50 * 1e3,
            );
            r.scalar(
                &format!("{}_{dir}_max_ms", svc_name.replace(' ', "_")),
                summary.max * 1e3,
            );
        }
    }
    println!("{}", text_table(&rows));
    r
}

/// Scaled S3 parameters for the partition-scaling experiments, plus the
/// factors converting fast-profile measurements back to paper scale.
pub struct ScalingProfile {
    pub cfg: S3Config,
    pub iops_factor: f64,
    pub time_factor: f64,
}

/// Build the fast or full scaling profile.
pub fn scaling_profile(fast_iops_scale: f64) -> ScalingProfile {
    if full_profile() {
        ScalingProfile {
            cfg: S3Config::standard(),
            iops_factor: 1.0,
            time_factor: 1.0,
        }
    } else {
        let mut cfg = S3Config::standard();
        cfg.read_iops_per_partition *= fast_iops_scale;
        cfg.write_iops *= fast_iops_scale;
        cfg.split_interval = SimDuration::from_secs(80);
        cfg.window = SimDuration::from_secs(2);
        ScalingProfile {
            cfg,
            iops_factor: 1.0 / fast_iops_scale,
            time_factor: 315.0 / 80.0,
        }
    }
}

/// Fig. 11: S3 IOPS scaling from one to five prefix partitions under a
/// controlled ramp (successful and failed operations over time).
pub fn fig11() -> ExperimentResult {
    let mut r = ExperimentResult::new("fig11", "S3 IOPS scaling under a controlled ramp");
    let profile = scaling_profile(0.1);
    let iops_factor = profile.iops_factor;
    let time_factor = profile.time_factor;
    r.param(
        "profile",
        if full_profile() {
            "full"
        } else {
            "fast (converted)"
        },
    );

    let cfg = profile.cfg.clone();
    let per_partition = profile.cfg.read_iops_per_partition;
    let (ok_series, fail_series, partitions) = in_sim(0xFB11, move |ctx| {
        Box::pin(async move {
            let meter = shared_meter();
            let bucket = S3Bucket::new(ctx.clone(), meter.clone(), cfg);
            let storage = Storage::S3(Rc::clone(&bucket));
            storage.backdoor_put("ramp/obj", Blob::synthetic(1024));
            let client = RetryingClient::new(storage.clone(), ctx.clone(), RetryPolicy::eager());

            let start = ctx.now();
            let bucket_len = SimDuration::from_secs(10);
            let ok = Rc::new(std::cell::RefCell::new(skyrise::sim::IntervalSeries::new(
                start, bucket_len,
            )));
            let fail = Rc::new(std::cell::RefCell::new(skyrise::sim::IntervalSeries::new(
                start, bucket_len,
            )));
            let mut parts: Vec<(f64, f64)> = Vec::new();

            // "Carefully controlled increasing load": each 10 s window
            // offers slightly more than the current capacity, so splits
            // are sustained without a divergent retry backlog — the
            // paper's ramp adds instances at a pace S3's scaling matches.
            let target_partitions = 5;
            let max_secs = if full_profile() { 3_600.0 } else { 900.0 };
            // The load generator is strictly open-loop: each 10 s window's
            // requests go onto a fixed timetable without waiting for the
            // previous window's stragglers (a quiet drain gap would reset
            // S3's sustained-overload detection — and would not happen
            // with the paper's independent client instances either).
            let mut all_handles = Vec::new();
            let mut window_start = ctx.now();
            loop {
                let capacity = bucket.partition_count() as f64 * per_partition;
                let rate = (capacity * 1.02).max(per_partition * 0.95);
                let n = (rate * 10.0) as u64;
                for i in 0..n {
                    let at = window_start + SimDuration::from_secs_f64(i as f64 / rate);
                    let ctx2 = ctx.clone();
                    let client = client.clone();
                    let ok = Rc::clone(&ok);
                    let fail = Rc::clone(&fail);
                    all_handles.push(ctx.spawn(async move {
                        ctx2.sleep_until(at).await;
                        let out = client.get("ramp/obj", 1024, &RequestOpts::default()).await;
                        let now = ctx2.now();
                        match out {
                            Ok((_, stats)) => {
                                ok.borrow_mut().record(now, 1.0);
                                if stats.throttles > 0 {
                                    fail.borrow_mut().record(now, stats.throttles as f64);
                                }
                            }
                            Err(_) => fail.borrow_mut().record(now, 1.0),
                        }
                    }));
                }
                window_start += SimDuration::from_secs(10);
                ctx.sleep_until(window_start).await;
                parts.push((
                    (ctx.now() - start).as_secs_f64(),
                    bucket.partition_count() as f64,
                ));
                if bucket.partition_count() >= target_partitions
                    || (ctx.now() - start).as_secs_f64() >= max_secs
                {
                    break;
                }
            }
            join_all(all_handles).await;
            let ok = ok.borrow().clone();
            let fail = fail.borrow().clone();
            (ok, fail, parts)
        })
    });

    let convert = |s: &skyrise::sim::IntervalSeries| -> Vec<(f64, f64)> {
        s.points()
            .into_iter()
            .map(|(x, y)| (x * time_factor / 60.0, y * iops_factor))
            .collect()
    };
    let ok_pts = convert(&ok_series);
    let fail_pts = convert(&fail_series);
    let part_pts: Vec<(f64, f64)> = partitions
        .iter()
        .map(|&(t, p)| (t * time_factor / 60.0, p))
        .collect();

    let peak_iops = ok_pts.iter().map(|&(_, y)| y).fold(0.0f64, f64::max);
    let final_partitions = part_pts.last().map(|&(_, p)| p).unwrap_or(1.0);
    let total_ok: f64 = ok_pts.iter().map(|&(_, y)| y).sum::<f64>() * 10.0 * time_factor;
    let total_fail: f64 = fail_pts.iter().map(|&(_, y)| y).sum::<f64>() * 10.0 * time_factor;
    let error_rate = total_fail / (total_ok + total_fail).max(1.0);

    println!(
        "{}",
        ascii_chart(
            &[
                NamedSeries::new("successful IOPS", ok_pts.clone()),
                NamedSeries::new("failed IOPS", fail_pts.clone()),
            ],
            90,
            14,
        )
    );
    r.scalar("peak_iops", peak_iops);
    r.scalar("final_partitions", final_partitions);
    r.scalar("error_rate", error_rate);
    if let Some(&(t, _)) = partitions.last() {
        r.scalar("minutes_to_final", t * time_factor / 60.0);
    }
    r.push_series(NamedSeries::new("successful_iops", ok_pts));
    r.push_series(NamedSeries::new("failed_iops", fail_pts));
    r.push_series(NamedSeries::new("partitions", part_pts));
    r
}

/// Fig. 12: time and budget required for S3 IOPS scaling (measured ramp
/// extended to 20 prefix partitions, converted to paper scale).
pub fn fig12() -> ExperimentResult {
    let mut r = ExperimentResult::new("fig12", "Required time and budget for S3 IOPS scaling");
    let profile = scaling_profile(0.02);
    let iops_factor = profile.iops_factor;
    let time_factor = profile.time_factor;
    let per_partition = profile.cfg.read_iops_per_partition;
    let price = StoragePricing::of(StorageService::S3Standard).read_request;

    let cfg = profile.cfg.clone();
    let milestones = in_sim(0xFB12, move |ctx| {
        Box::pin(async move {
            let meter = shared_meter();
            let bucket = S3Bucket::new(ctx.clone(), meter.clone(), cfg);
            let storage = Storage::S3(Rc::clone(&bucket));
            storage.backdoor_put("ramp/obj", Blob::synthetic(1024));
            let start = ctx.now();
            let mut requests = 0u64;
            let mut milestones: Vec<(usize, f64, u64)> = Vec::new(); // (partitions, secs, requests)
            let opts = RequestOpts::default();

            // Adaptive sustained overload: always offer ~1.05x capacity.
            while bucket.partition_count() < 20 {
                let capacity = bucket.partition_count() as f64 * per_partition;
                let rate = capacity * 1.05;
                let window = 5.0f64;
                let n = (rate * window) as u64;
                let t0 = ctx.now();
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        let at = t0 + SimDuration::from_secs_f64(i as f64 / rate);
                        let ctx2 = ctx.clone();
                        let storage = storage.clone();
                        let opts = opts.clone();
                        ctx.spawn(async move {
                            ctx2.sleep_until(at).await;
                            let _ = storage.get("ramp/obj", &opts).await;
                        })
                    })
                    .collect();
                join_all(handles).await;
                requests += n;
                let parts = bucket.partition_count();
                if milestones.last().map(|&(p, _, _)| p) != Some(parts) {
                    milestones.push((parts, (ctx.now() - start).as_secs_f64(), requests));
                }
            }
            milestones
        })
    });

    let mut time_pts = Vec::new();
    let mut cost_pts = Vec::new();
    let mut rows = vec![vec![
        "Partitions".to_string(),
        "IOPS".into(),
        "Time [h]".into(),
        "Budget [$]".into(),
    ]];
    for &(parts, secs, requests) in &milestones {
        let iops = parts as f64 * per_partition * iops_factor;
        let hours = secs * time_factor / 3600.0;
        let usd = requests as f64 * iops_factor * time_factor * price;
        time_pts.push((iops / 1e3, hours));
        cost_pts.push((iops / 1e3, usd));
        rows.push(vec![
            parts.to_string(),
            format!("{:.1}K", iops / 1e3),
            format!("{hours:.2}"),
            format!("{usd:.0}"),
        ]);
    }
    println!("{}", text_table(&rows));
    let at_50k = time_pts.iter().find(|&&(k, _)| k >= 49.0);
    let cost_50k = cost_pts.iter().find(|&&(k, _)| k >= 49.0);
    if let (Some(&(_, h)), Some(&(_, c))) = (at_50k, cost_50k) {
        r.scalar("hours_to_50k", h);
        r.scalar("usd_to_50k", c);
    }
    if let (Some(&(_, h)), Some(&(_, c))) = (
        time_pts.iter().find(|&&(k, _)| k >= 99.0),
        cost_pts.iter().find(|&&(k, _)| k >= 99.0),
    ) {
        r.scalar("hours_to_100k", h);
        r.scalar("usd_to_100k", c);
    }
    r.push_series(NamedSeries::new("time_hours_vs_kiops", time_pts));
    r.push_series(NamedSeries::new("budget_usd_vs_kiops", cost_pts));
    r
}

/// Fig. 13: S3 scaling down from five to one prefix partitions under
/// hourly and daily probe patterns.
pub fn fig13() -> ExperimentResult {
    let mut r = ExperimentResult::new("fig13", "S3 downscaling under hourly/daily load patterns");
    let profile = scaling_profile(0.1);
    let iops_factor = profile.iops_factor;
    let per_partition = profile.cfg.read_iops_per_partition;

    for (arm, probe_every_h, label) in [(0u64, 2u64, "hourly"), (1, 24, "daily")] {
        let cfg = profile.cfg.clone();
        let series = in_sim(0xFB13 + arm, move |ctx| {
            Box::pin(async move {
                let meter = shared_meter();
                let bucket = S3Bucket::new(ctx.clone(), meter.clone(), cfg);
                bucket.warm_to(5);
                let storage = Storage::S3(Rc::clone(&bucket));
                storage.backdoor_put("probe/obj", Blob::synthetic(1024));
                let opts = RequestOpts::default();
                let mut points = Vec::new();
                let total_hours = 5 * 24 + 12;
                let mut hour = 0u64;
                while hour <= total_hours {
                    ctx.sleep(SimDuration::from_hours(probe_every_h)).await;
                    hour += probe_every_h;
                    // Probe: 5 s of load at ~1.2x the 5-partition capacity;
                    // successful rate reveals surviving partitions.
                    let rate = 5.0 * per_partition * 1.2;
                    let n = (rate * 5.0) as u64;
                    let t0 = ctx.now();
                    let ok = Rc::new(std::cell::Cell::new(0u64));
                    let handles: Vec<_> = (0..n)
                        .map(|i| {
                            let at = t0 + SimDuration::from_secs_f64(i as f64 / rate);
                            let ctx2 = ctx.clone();
                            let storage = storage.clone();
                            let opts = opts.clone();
                            let ok = Rc::clone(&ok);
                            ctx.spawn(async move {
                                ctx2.sleep_until(at).await;
                                if storage.get("probe/obj", &opts).await.is_ok() {
                                    ok.set(ok.get() + 1);
                                }
                            })
                        })
                        .collect();
                    join_all(handles).await;
                    let measured = ok.get() as f64 / 5.0;
                    points.push((hour as f64 / 24.0, measured));
                }
                points
            })
        });
        let converted: Vec<(f64, f64)> = series
            .into_iter()
            .map(|(d, iops)| (d, iops * iops_factor))
            .collect();
        let last = converted.last().expect("points").1;
        let first = converted.first().expect("points").1;
        r.scalar(&format!("{label}_first_probe_iops"), first);
        r.scalar(&format!("{label}_final_iops"), last);
        r.push_series(NamedSeries::new(&format!("{label} probes"), converted));
    }
    println!("{}", ascii_chart(&r.series, 90, 14));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig09_quota_relationships_hold() {
        let r = fig09();
        // S3 Express provides the highest IOPS.
        assert!(r.scalars["S3_Express_read_iops"] > r.scalars["DynamoDB_read_iops"]);
        assert!(r.scalars["S3_Express_read_iops"] > 150_000.0);
        // EFS misses its documented quota by >10x.
        assert!(r.scalars["EFS_1_read_iops"] < 55_000.0 / 10.0);
        // Two filesystems double EFS read IOPS.
        let ratio = r.scalars["EFS_2_read_iops"] / r.scalars["EFS_1_read_iops"];
        assert!((1.6..=2.4).contains(&ratio), "EFS-2/EFS-1 = {ratio}");
        // S3 Standard sits just at its single-partition quota.
        assert!((4_500.0..=8_500.0).contains(&r.scalars["S3_Standard_read_iops"]));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig10_latency_ordering_matches_paper() {
        let r = fig10();
        // S3 Standard has the highest median; Express/DynamoDB/EFS are ~5 ms.
        let s3 = r.scalars["S3_Standard_read_p50_ms"];
        assert!((20.0..=35.0).contains(&s3), "{s3}");
        for svc in ["S3_Express", "DynamoDB", "EFS"] {
            let p50 = r.scalars[&format!("{svc}_read_p50_ms")];
            assert!(p50 < 8.0, "{svc} median {p50}");
        }
        // EFS writes are 2-3x its reads.
        let ratio = r.scalars["EFS_write_p50_ms"] / r.scalars["EFS_read_p50_ms"];
        assert!((1.8..=3.5).contains(&ratio), "{ratio}");
        // Tail latencies reach orders of magnitude above the median.
        assert!(r.scalars["S3_Standard_read_max_ms"] > 600.0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig11_scales_iops_with_partition_splits() {
        let r = fig11();
        assert!(
            r.scalars["final_partitions"] >= 4.0,
            "{}",
            r.scalars["final_partitions"]
        );
        assert!(
            r.scalars["peak_iops"] > 20_000.0,
            "peak {}",
            r.scalars["peak_iops"]
        );
        assert!(
            r.scalars["error_rate"] > 0.01 && r.scalars["error_rate"] < 0.5,
            "error rate {}",
            r.scalars["error_rate"]
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig08_throughput_crossovers() {
        let r = fig08();
        // Both S3 classes scale far beyond DynamoDB and EFS.
        let s3 = r.scalars["S3_Standard_read_gib_s_at_max_clients"];
        let dy = r.scalars["DynamoDB_read_gib_s_at_max_clients"];
        let efs = r.scalars["EFS_read_gib_s_at_max_clients"];
        assert!(s3 > 10.0 * dy, "S3 {s3} vs DynamoDB {dy}");
        assert!(s3 > 2.0 * efs, "S3 {s3} vs EFS {efs}");
        // DynamoDB saturates around 380 MiB/s; EFS near its 20 GiB/s quota.
        assert!((0.25..=0.45).contains(&dy), "DynamoDB {dy} GiB/s");
        assert!((10.0..=22.0).contains(&efs), "EFS {efs} GiB/s");
        // Writes are universally slower than reads.
        let s3w = r.scalars["S3_Standard_write_gib_s_at_max_clients"];
        assert!(s3w < s3);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig12_time_and_budget_grow_superlinearly() {
        let r = fig12();
        let h50 = r.scalars["hours_to_50k"];
        let h100 = r.scalars["hours_to_100k"];
        let c50 = r.scalars["usd_to_50k"];
        let c100 = r.scalars["usd_to_100k"];
        // Doubling IOPS more than doubles both time and budget.
        assert!(h100 > 2.0 * h50, "{h50} -> {h100}");
        assert!(c100 > 2.5 * c50, "{c50} -> {c100}");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig13_downscales_over_days() {
        let r = fig13();
        // Starts at ~5 partitions' capacity (27.5K), ends at ~1 (5.5K).
        assert!(r.scalars["hourly_first_probe_iops"] > 20_000.0);
        assert!(r.scalars["hourly_final_iops"] < 9_000.0);
        assert!(r.scalars["daily_final_iops"] < 9_000.0);
    }
}
