//! Figures 14–15: resource effects translated to query performance.

use crate::datasets::load_paper_datasets;
use crate::{in_sim, in_sim_traced};
use skyrise::engine::{cpu, queries, QueryConfig};
use skyrise::micro::{ascii_chart, text_table, ExperimentResult, NamedSeries};
use skyrise::net::presets;
use skyrise::prelude::*;
use std::rc::Rc;

/// Analytic network model of a Lambda worker ingesting `bytes`: burst at
/// 1.2 GiB/s until the 300 MiB budget (plus concurrent refill) drains,
/// then the 75 MiB/s baseline.
pub fn network_model_secs(bytes: f64) -> f64 {
    let burst = presets::LAMBDA_BURST_IN;
    let base = 75.0 * MIB as f64;
    let budget = presets::LAMBDA_RECHARGEABLE + presets::LAMBDA_ONEOFF;
    // Burst phase: tokens + refill feed the burst rate.
    let t_burst = budget / (burst - base);
    let bytes_in_burst = burst * t_burst;
    if bytes <= bytes_in_burst {
        bytes / burst
    } else {
        t_burst + (bytes - bytes_in_burst) / base
    }
}

/// Fig. 14: query worker throughput for input sizes within and beyond
/// the network burst budget (TPC-H Q6): network model vs I/O stack vs
/// scan operator vs complete query.
pub fn fig14() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig14",
        "Worker throughput within/beyond the network burst budget (TPC-H Q6)",
    );
    let partition_mib = 182.4;
    let mut model_pts = Vec::new();
    let mut io_pts = Vec::new();
    let mut scan_pts = Vec::new();
    let mut query_pts = Vec::new();

    for k in 1..=6usize {
        let input_bytes = k as f64 * partition_mib * MIB as f64;
        model_pts.push((
            input_bytes / GIB as f64,
            input_bytes / network_model_secs(input_bytes) / GIB as f64,
        ));

        let (bytes_per_worker, io_secs, cpu_secs, fragments, profile) =
            in_sim_traced(0xFE14 + k as u64, move |ctx, _tracer| {
                Box::pin(async move {
                    let meter = shared_meter();
                    let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
                    // 8 workers x k partitions each.
                    load_paper_datasets(&storage, 0.005, (8 * k) as f64 / 996.0).unwrap();
                    let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
                    let engine =
                        Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
                    engine.warm(12).await;
                    let config = QueryConfig {
                        target_bytes_per_worker: (k as f64 * partition_mib * MIB as f64) as u64,
                        ..QueryConfig::default()
                    };
                    let (response, profile) = engine
                        .run_profiled(&queries::q6(), config)
                        .await
                        .expect("q6");
                    let scan = &response.stages[0];
                    (
                        scan.logical_bytes_read as f64 / scan.fragments as f64,
                        scan.io_secs_total / scan.fragments as f64,
                        scan.cpu_secs_total / scan.fragments as f64,
                        scan.fragments,
                        profile,
                    )
                })
            });
        assert!(fragments >= 4, "enough parallelism ({fragments})");
        // The largest input doubles as the acceptance profile: per-operator
        // time and cost breakdown for TPC-H Q6.
        if k == 6 {
            println!("{}", profile.render());
            r.scalar("q6_profile_runtime_secs", profile.runtime_secs);
            r.scalar("q6_profile_coldstart_share", profile.coldstart_share);
            for (op, secs) in &profile.operator_secs {
                r.scalar(&format!("q6_op_{}_secs", op.replace('-', "_")), *secs);
            }
            if let Some(cost) = &profile.cost {
                r.scalar("q6_profile_cost_usd", cost.total_usd());
            }
        }
        let x = bytes_per_worker / GIB as f64;
        // "Scan operator": fetch + I/O stack + decode (the worker's I/O phase).
        scan_pts.push((x, bytes_per_worker / io_secs / GIB as f64));
        // "I/O stack": remove the decode share (charged during the I/O phase).
        let decode = cpu::decode_cost(bytes_per_worker, 4.0).as_secs_f64();
        io_pts.push((
            x,
            bytes_per_worker / (io_secs - decode).max(1e-9) / GIB as f64,
        ));
        // Complete query: I/O + operators.
        query_pts.push((x, bytes_per_worker / (io_secs + cpu_secs) / GIB as f64));
    }

    println!(
        "{}",
        ascii_chart(
            &[
                NamedSeries::new("network model GiB/s", model_pts.clone()),
                NamedSeries::new("I/O stack GiB/s", io_pts.clone()),
                NamedSeries::new("scan GiB/s", scan_pts.clone()),
                NamedSeries::new("query GiB/s", query_pts.clone()),
            ],
            90,
            16,
        )
    );
    // Burst exploitation speedup: per-byte speed within the budget vs at
    // the largest input (paper: "up to 53% faster").
    let speedup = query_pts[0].1 / query_pts.last().expect("points").1;
    r.scalar("within_budget_speedup", speedup);
    r.scalar("model_tput_within_gib_s", model_pts[0].1);
    r.scalar("query_tput_within_gib_s", query_pts[0].1);
    r.scalar(
        "query_tput_beyond_gib_s",
        query_pts.last().expect("points").1,
    );
    r.push_series(NamedSeries::new("network_model", model_pts));
    r.push_series(NamedSeries::new("io_stack", io_pts));
    r.push_series(NamedSeries::new("scan", scan_pts));
    r.push_series(NamedSeries::new("query", query_pts));
    r
}

/// Fig. 15: IOPS throughput of S3 classes/modes and their impact on
/// TPC-H Q12 and its shuffle.
pub fn fig15() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig15",
        "S3 class/warm-state impact on TPC-H Q12 and its shuffle",
    );
    let fragments = 64u32;
    r.param("join_fragments", fragments);

    let mut rows = vec![vec![
        "Shuffle storage".to_string(),
        "Query [s]".into(),
        "Shuffle stage [s]".into(),
        "Shuffle IOPS".into(),
    ]];
    for (arm, label) in [
        (0u64, "S3 Standard (new)"),
        (1, "S3 Standard (warmed)"),
        (2, "S3 Express"),
    ] {
        let (query_secs, shuffle_secs, shuffle_iops) = in_sim(0xFE15 + arm, move |ctx| {
            Box::pin(async move {
                let meter = shared_meter();
                let base = Storage::S3(S3Bucket::standard(&ctx, &meter));
                load_paper_datasets(&base, 0.01, 0.15).unwrap();
                let shuffle = match arm {
                    0 => Storage::S3(S3Bucket::standard(&ctx, &meter)),
                    1 => {
                        let bucket = S3Bucket::standard(&ctx, &meter);
                        // "a bucket that has just been used for query
                        // execution for 15 minutes" — warmed partitions.
                        bucket.warm_to(5);
                        Storage::S3(bucket)
                    }
                    _ => Storage::S3(S3Bucket::express(&ctx, &meter)),
                };
                let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
                let engine = Skyrise::deploy(
                    &ctx,
                    ComputePlatform::Faas(lambda),
                    base,
                    shuffle,
                    skyrise::engine::SkyriseConfig::default(),
                );
                engine.warm(80).await;

                let mut plan = queries::q12();
                for p in plan.pipelines.iter_mut() {
                    if p.id != 3 {
                        p.fragments = Some(fragments);
                    }
                }
                let response = engine.run_default(&plan).await.expect("q12");
                // The join pipeline (id 2) reads both shuffles.
                let join = response
                    .stages
                    .iter()
                    .find(|s| s.pipeline == 2)
                    .expect("join stage");
                let iops = join.storage_requests as f64 / join.duration_secs.max(1e-9);
                (response.runtime_secs, join.duration_secs, iops)
            })
        });
        rows.push(vec![
            label.into(),
            format!("{query_secs:.2}"),
            format!("{shuffle_secs:.2}"),
            format!("{shuffle_iops:.0}"),
        ]);
        let key = label
            .replace(['(', ')'], "")
            .replace(' ', "_")
            .to_lowercase();
        r.scalar(&format!("{key}_query_secs"), query_secs);
        r.scalar(&format!("{key}_shuffle_secs"), shuffle_secs);
        r.scalar(&format!("{key}_shuffle_iops"), shuffle_iops);
    }
    println!("{}", text_table(&rows));
    let _ = Rc::new(());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_model_has_burst_knee() {
        let within = 200.0 * MIB as f64;
        let beyond = 1_200.0 * MIB as f64;
        let tput_within = within / network_model_secs(within);
        let tput_beyond = beyond / network_model_secs(beyond);
        assert!(tput_within > GIB as f64, "within budget ~1.2 GiB/s");
        assert!(
            tput_beyond < 0.35 * GIB as f64,
            "beyond drops toward baseline"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig14_curves_order_and_burst_speedup() {
        let r = fig14();
        // model >= io stack >= scan >= query, pointwise at the first size.
        let m = r.scalars["model_tput_within_gib_s"];
        let q = r.scalars["query_tput_within_gib_s"];
        assert!(m > q, "model {m} > query {q}");
        // Exploiting the burst is substantially faster (paper: up to 53%).
        let speedup = r.scalars["within_budget_speedup"];
        assert!((1.25..=4.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig15_warm_and_express_beat_cold_shuffles() {
        let r = fig15();
        let cold = r.scalars["s3_standard_new_shuffle_secs"];
        let warm = r.scalars["s3_standard_warmed_shuffle_secs"];
        let express = r.scalars["s3_express_shuffle_secs"];
        assert!(warm < cold, "warmed {warm} vs cold {cold}");
        assert!(express < cold, "express {express} vs cold {cold}");
        // Paper: shuffle roughly halves; query improves ~20%.
        let shuffle_gain = cold / warm;
        assert!(shuffle_gain > 1.2, "shuffle gain {shuffle_gain}");
        let q_cold = r.scalars["s3_standard_new_query_secs"];
        let q_warm = r.scalars["s3_standard_warmed_query_secs"];
        assert!(q_warm < q_cold);
    }
}
