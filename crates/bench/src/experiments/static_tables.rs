//! Tables 1–3, 7, 8: catalog- and formula-driven tables (no simulation).

use skyrise::micro::{text_table, ExperimentResult};
use skyrise::pricing::breakeven::{
    humanize_secs, table7, table8_clusters, table8_s3_express, table8_s3_standard,
    TABLE7_ACCESS_SIZES,
};
use skyrise::pricing::{ec2_catalog, LambdaPricing, StoragePricing, StorageService};

/// Table 1: configuration and pricing of AWS compute services.
pub fn table01() -> ExperimentResult {
    let mut r = ExperimentResult::new("table01", "Configuration and pricing of AWS compute");
    let lambda = LambdaPricing::arm();
    let cat = ec2_catalog();
    let c6g: Vec<_> = cat.iter().filter(|i| i.name.starts_with("c6g.")).collect();

    let mem_price_min = c6g
        .iter()
        .map(|i| i.reserved_usd_per_hour / i.memory_gib * 100.0)
        .fold(f64::INFINITY, f64::min);
    let mem_price_max = c6g
        .iter()
        .map(|i| i.cents_per_gib_hour())
        .fold(0.0f64, f64::max);
    let vcpu_min = c6g
        .iter()
        .map(|i| i.reserved_usd_per_hour / i.vcpus as f64 * 100.0)
        .fold(f64::INFINITY, f64::min);
    let vcpu_max = c6g
        .iter()
        .map(|i| i.cents_per_vcpu_hour())
        .fold(0.0f64, f64::max);
    let net_min = c6g
        .iter()
        .map(|i| i.net_baseline_gbps)
        .fold(f64::INFINITY, f64::min);
    let net_max = c6g
        .iter()
        .map(|i| i.net_baseline_gbps)
        .fold(0.0f64, f64::max);

    let rows = vec![
        vec!["Resource".into(), "Lambda (ARM)".into(), "EC2 (C6g)".into()],
        vec![
            "Memory capacity [GiB]".into(),
            "0.125 - 10".into(),
            "2 - 128".into(),
        ],
        vec![
            "Memory price [c/GiB-h]".into(),
            format!(
                "{:.2} - {:.2}",
                lambda.cents_per_gib_hour_cheapest(),
                lambda.cents_per_gib_hour()
            ),
            format!("{mem_price_min:.2} - {mem_price_max:.2}"),
        ],
        vec![
            "Compute capacity [vCPU]".into(),
            "memory-based (1/1769 MiB)".into(),
            "1 - 64".into(),
        ],
        vec![
            "Compute price [c/vCPU-h]".into(),
            format!(
                "{:.2} - {:.2}",
                lambda.cents_per_gib_hour_cheapest() * 1.769 / 1.024,
                lambda.cents_per_gib_hour() * 1.769 / 1.024
            ),
            format!("{vcpu_min:.2} - {vcpu_max:.2}"),
        ],
        vec![
            "Network bandwidth [Gbps]".into(),
            "0.63 (constant)".into(),
            format!("{net_min} - {net_max}"),
        ],
        vec![
            "Ephemeral storage [GiB]".into(),
            "0.5 - 10".into(),
            "0 - 3,800 (C6gd)".into(),
        ],
    ];
    println!("{}", text_table(&rows));
    r.scalar("lambda_cents_per_gib_h_max", lambda.cents_per_gib_hour());
    r.scalar("ec2_cents_per_gib_h_max", mem_price_max);
    r.scalar(
        "lambda_to_ec2_memory_price_ratio",
        lambda.cents_per_gib_hour() / mem_price_max,
    );
    r
}

/// Table 2: pricing of AWS serverless storage services.
pub fn table02() -> ExperimentResult {
    let mut r = ExperimentResult::new("table02", "Pricing of AWS serverless storage services");
    let mut rows = vec![vec![
        "Service".into(),
        "Read [c/M]".into(),
        "Write [c/M]".into(),
        "Xfer read [c/GiB]".into(),
        "Xfer write [c/GiB]".into(),
        "Storage [c/GiB-mo]".into(),
    ]];
    for svc in StorageService::all() {
        let p = StoragePricing::of(svc);
        rows.push(vec![
            svc.name().into(),
            format!("{:.0}", p.read_request * 1e6 * 100.0),
            format!("{:.0}", p.write_request * 1e6 * 100.0),
            format!("{:.2}", p.transfer_read_per_gib * 100.0),
            format!("{:.2}", p.transfer_write_per_gib * 100.0),
            format!("{:.1}", p.storage_per_gib_month * 100.0),
        ]);
    }
    println!("{}", text_table(&rows));
    let s3 = StoragePricing::of(StorageService::S3Standard);
    r.scalar(
        "s3_warm_100k_iops_usd_per_hour",
        s3.read_request * 100_000.0 * 3600.0,
    );
    r
}

/// Table 3: overview of experiment configurations (descriptive).
pub fn table03() -> ExperimentResult {
    let r = ExperimentResult::new("table03", "Overview of experiment configurations");
    let rows: Vec<Vec<String>> = vec![
        vec![
            "System under test".into(),
            "Driver".into(),
            "Functions".into(),
            "Parameters".into(),
            "Metrics".into(),
        ],
        vec![
            "Lambda".into(),
            "FaaS platform".into(),
            "minimal, network I/O, storage I/O".into(),
            "instance size & count".into(),
            "I/O throughput, startup latency, idle lifetime".into(),
        ],
        vec![
            "EC2".into(),
            "IaaS platform".into(),
            "network I/O, storage I/O".into(),
            "instance type & count".into(),
            "I/O throughput, startup latency".into(),
        ],
        vec![
            "S3, DynamoDB, EFS".into(),
            "IaaS & FaaS".into(),
            "storage I/O".into(),
            "file size & count".into(),
            "I/O throughput, IOPS, latency".into(),
        ],
        vec![
            "Skyrise query engine".into(),
            "data system".into(),
            "query coordinator, query worker".into(),
            "queries, data size, deployment".into(),
            "query latency & cost".into(),
        ],
    ];
    println!("{}", text_table(&rows));
    r
}

/// Table 7: break-even intervals across the cloud storage hierarchy.
pub fn table07() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "table07",
        "Break-even intervals for data access sizes and storage combinations",
    );
    let mut rows = vec![vec![
        "Access size".into(),
        "4 KiB".into(),
        "16 KiB".into(),
        "4 MiB".into(),
        "16 MiB".into(),
    ]];
    for (pair, cells) in table7() {
        let mut row = vec![pair.label().to_string()];
        row.extend(cells.iter().map(|&s| humanize_secs(s)));
        rows.push(row);
        for (i, &secs) in cells.iter().enumerate() {
            r.scalar(
                &format!(
                    "{}_{}b_secs",
                    pair.label().replace(['/', ' '], "_"),
                    TABLE7_ACCESS_SIZES[i]
                ),
                secs,
            );
        }
    }
    println!("{}", text_table(&rows));
    r
}

/// Table 8: break-even access sizes for shuffle media.
pub fn table08() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "table08",
        "Break-even data access sizes for instance types and storage systems",
    );
    let clusters = table8_clusters();
    let mut header = vec!["Storage".to_string()];
    header.extend(clusters.iter().map(|c| c.label()));
    let mut std_row = vec!["S3 Standard".to_string()];
    let mut xps_row = vec!["S3 Express".to_string()];
    for c in &clusters {
        let beas_mb = table8_s3_standard(c);
        std_row.push(format!(
            "{:.0} MiB",
            (beas_mb * 1e6 / (1 << 20) as f64).round()
        ));
        r.scalar(
            &format!("s3std_{}_mb", c.label().replace(' ', "_")),
            beas_mb,
        );
        xps_row.push(match table8_s3_express(c) {
            Some(mb) => format!("{mb:.0} MB"),
            None => "never".into(),
        });
    }
    println!("{}", text_table(&[header, std_row, xps_row]));
    r.param(
        "s3_express",
        "never breaks even (transfer fee > VM network cost)",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_produce_expected_headline_numbers() {
        let t1 = table01();
        // Lambda memory is 2.5-5.9x pricier than EC2 (paper Sec. 2.1).
        let ratio = t1.scalars["lambda_to_ec2_memory_price_ratio"];
        assert!((2.5..=5.9).contains(&ratio), "ratio {ratio}");

        let t2 = table02();
        let warm = t2.scalars["s3_warm_100k_iops_usd_per_hour"];
        assert!((warm - 144.0).abs() < 1.0, "paper: $144/h, got {warm}");

        let t7 = table07();
        assert!(!t7.scalars.is_empty());
        let t8 = table08();
        assert!(t8.scalars.len() == 4);
        let _ = table03();
    }
}
