//! Tables 4–6: dataset inventory, variability, and FaaS-vs-IaaS
//! economics.

use crate::datasets::{load_paper_datasets, PAPER_TABLES};
use crate::in_sim;
use skyrise::data::{spf, tpch, tpcxbb};
use skyrise::engine::{queries, QueryConfig, QueryResponse, Skyrise};
use skyrise::micro::{text_table, ExperimentResult};
use skyrise::prelude::*;
use skyrise::pricing::LambdaPricing;
use skyrise::sim::metrics::summary;
use std::rc::Rc;

/// Table 4: datasets at SF1000 — sizes extrapolated from our SPF
/// encoding of sampled data, partition counts from the paper's layout.
pub fn table04() -> ExperimentResult {
    let mut r = ExperimentResult::new("table04", "Datasets used in the experiments (SF1000)");
    let sample_sf = 0.01;
    let t = tpch::generate(sample_sf, 7);
    let bb = tpcxbb::generate(sample_sf * 10.0, 7);

    // ZSTD typically compresses these tables ~1.6x better than our
    // lightweight encodings; apply that documented equivalence factor.
    const ZSTD_EQUIVALENCE: f64 = 0.62;

    let mut rows = vec![vec![
        "TPC table".to_string(),
        "Size [GiB]".into(),
        "# partitions".into(),
        "Partition size [MiB]".into(),
    ]];
    for spec in PAPER_TABLES {
        let (batch, rows_at_sf1000): (&Batch, f64) = match spec.name {
            "h_lineitem" => (
                &t.lineitem,
                t.lineitem.num_rows() as f64 / sample_sf * 1000.0 * sample_sf / sample_sf,
            ),
            "h_orders" => (&t.orders, tpch::orders_rows(1000.0) as f64),
            "bb_clickstreams" => (&bb.clickstreams, tpcxbb::clickstream_rows(1000.0) as f64),
            _ => (&bb.item, tpcxbb::item_rows(1000.0) as f64),
        };
        let encoded = spf::write(std::slice::from_ref(batch), 8192);
        let bytes_per_row = encoded.len() as f64 / batch.num_rows() as f64;
        let rows1000 = if spec.name == "h_lineitem" {
            batch.num_rows() as f64 / sample_sf * 1000.0
        } else {
            rows_at_sf1000
        };
        let total_gib = rows1000 * bytes_per_row * ZSTD_EQUIVALENCE / GIB as f64;
        let part_mib = total_gib * 1024.0 / spec.sf1000_partitions as f64;
        rows.push(vec![
            spec.name.into(),
            format!("{total_gib:.1}"),
            spec.sf1000_partitions.to_string(),
            format!("{part_mib:.1}"),
        ]);
        r.scalar(&format!("{}_sf1000_gib", spec.name), total_gib);
        r.scalar(&format!("{}_partition_mib", spec.name), part_mib);
    }
    println!("{}", text_table(&rows));
    r
}

/// One suite run: all four queries back to back; returns total runtime.
async fn run_suite(engine: &Rc<Skyrise>, config: &QueryConfig) -> f64 {
    let mut total = 0.0;
    for plan in queries::suite() {
        let response = engine
            .run(&plan, config.clone())
            .await
            .expect("suite query");
        total += response.runtime_secs;
    }
    total
}

/// Table 5: performance variability between and within regions, for cold
/// (spread over a workday) and warm (back-to-back) runs.
pub fn table05() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "table05",
        "Variability between/within regions (MR vs us-east-1, CoV %)",
    );
    let reps = 5usize;
    let fraction = 0.02;
    r.param("reps", reps).param("fraction", fraction);

    let mut medians: Vec<[f64; 2]> = Vec::new(); // [cold, warm] per region
    let mut covs: Vec<[f64; 2]> = Vec::new();
    let regions = Region::table5();

    for (ri, region) in regions.iter().enumerate() {
        let region = region.clone();
        let (cold_runs, warm_runs) = in_sim(0xE500 + ri as u64, move |ctx| {
            Box::pin(async move {
                let meter = shared_meter();
                let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
                load_paper_datasets(&storage, 0.004, fraction).unwrap();
                let lambda = LambdaPlatform::new(&ctx, &meter, region);
                let engine = Skyrise::deploy_simple(
                    &ctx,
                    ComputePlatform::Faas(Rc::clone(&lambda)),
                    storage,
                );
                let config = QueryConfig {
                    target_bytes_per_worker: 256 << 20,
                    ..QueryConfig::default()
                };

                // Cold: repetitions spread across a workday (paper: 15-min
                // intervals over a workday); sandboxes expire in between.
                ctx.sleep_until(skyrise::sim::SimTime::from_nanos(9 * 3_600 * 1_000_000_000))
                    .await;
                let mut cold = Vec::new();
                for _ in 0..reps {
                    // Co-tenant workloads keep the account's sandbox-scaling
                    // pool (almost) drained, with the residual varying run
                    // to run: each cold cluster startup rides the region's
                    // refill rate plus that local jitter — the paper's EU
                    // contention and its "localized factors".
                    let drain = ctx.with_rng(|r| r.gen_range_f64(0.995, 1.0));
                    lambda.consume_scaling_burst(3_000.0 * drain);
                    cold.push(run_suite(&engine, &config).await);
                    ctx.sleep(SimDuration::from_mins(95)).await;
                }
                // Warm: back-to-back over three hours.
                let mut warm = Vec::new();
                run_suite(&engine, &config).await; // warmup
                for _ in 0..reps {
                    warm.push(run_suite(&engine, &config).await);
                }
                (cold, warm)
            })
        });
        medians.push([summary::median(&cold_runs), summary::median(&warm_runs)]);
        covs.push([
            summary::cov_percent(&cold_runs),
            summary::cov_percent(&warm_runs),
        ]);
    }

    let mut rows = vec![vec![
        "Measure".to_string(),
        "US".into(),
        "EU".into(),
        "AP".into(),
    ]];
    for (mi, (label, idx)) in [("Cold MR (US)", 0usize), ("Warm MR (US)", 1)]
        .iter()
        .enumerate()
    {
        let _ = mi;
        let mut row = vec![label.to_string()];
        for reg in 0..3 {
            row.push(format!("{:.2}", medians[reg][*idx] / medians[0][*idx]));
        }
        rows.push(row);
    }
    for (label, idx) in [("Cold CoV", 0usize), ("Warm CoV", 1)] {
        let mut row = vec![label.to_string()];
        row.extend(covs.iter().map(|c| format!("{:.2}", c[idx])));
        rows.push(row);
    }
    println!("{}", text_table(&rows));

    for (reg, name) in ["us", "eu", "ap"].iter().enumerate() {
        r.scalar(&format!("{name}_cold_median_secs"), medians[reg][0]);
        r.scalar(&format!("{name}_warm_median_secs"), medians[reg][1]);
        r.scalar(&format!("{name}_cold_mr"), medians[reg][0] / medians[0][0]);
        r.scalar(&format!("{name}_warm_mr"), medians[reg][1] / medians[0][1]);
        r.scalar(&format!("{name}_cold_cov"), covs[reg][0]);
        r.scalar(&format!("{name}_warm_cov"), covs[reg][1]);
    }
    r
}

/// Per-query measurements for Table 6.
struct QueryEconomics {
    iaas_secs: f64,
    faas_secs: f64,
    cumulated_secs: f64,
    faas_cost_cents: f64,
    break_even_per_hour: f64,
    peak_to_avg: f64,
    storage_requests: u64,
    shuffle_io_kib: (f64, f64),
    storage_cost_cents: f64,
    peak_workers: u32,
}

fn measure_query(plan_idx: usize) -> QueryEconomics {
    in_sim(0xE600 + plan_idx as u64, move |ctx| {
        Box::pin(async move {
            let plan = if plan_idx == 0 {
                queries::q6()
            } else {
                queries::q12()
            };
            let meter = shared_meter();
            let fraction = 0.2;
            // Burst-calibrated workers: one ~182 MiB partition each (the
            // paper's own recommendation, and what makes its Q6 cluster
            // 201 workers wide at 996 partitions). This also recreates
            // Q12's tens-of-thousands-of-requests shuffle.
            let config = QueryConfig {
                target_bytes_per_worker: 190 << 20,
                ..QueryConfig::default()
            };

            // FaaS arm (functions warmed up, paper Sec. 5.2).
            let s1 = Storage::S3(S3Bucket::standard(&ctx, &meter));
            load_paper_datasets(&s1, 0.01, fraction).unwrap();
            let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), s1);
            // Discover the peak parallelism with one warmup run.
            let warmup = engine.run(&plan, config.clone()).await.expect("warmup");
            let peak = warmup.peak_workers();
            engine.warm(peak as usize + 8).await;

            // Measured FaaS run with metering deltas.
            let (gb_s0, inv0, req_cost0) = {
                let m = meter.borrow();
                (
                    m.lambda.gb_seconds,
                    m.lambda.invocations,
                    m.report().storage_request_usd,
                )
            };
            let faas: QueryResponse = engine.run(&plan, config.clone()).await.expect("faas run");
            let (gb_s1, inv1, req_cost1, requests) = {
                let m = meter.borrow();
                (
                    m.lambda.gb_seconds,
                    m.lambda.invocations,
                    m.report().storage_request_usd,
                    faas.total_requests(),
                )
            };
            let pricing = LambdaPricing::arm();
            let faas_cost =
                (gb_s1 - gb_s0) * pricing.gb_second() + (inv1 - inv0) as f64 * pricing.per_request;
            let storage_cost = req_cost1 - req_cost0;

            // IaaS arm: peak-provisioned c6g.xlarge cluster.
            let s2 = Storage::S3(S3Bucket::standard(&ctx, &meter));
            load_paper_datasets(&s2, 0.01, fraction).unwrap();
            let fleet = Ec2Fleet::new(&ctx, &meter);
            let vms = fleet
                .launch_many(&LaunchConfig::on_demand("c6g.xlarge"), peak as usize)
                .await;
            let cluster = ShimCluster::new(&ctx, vms, 4);
            let cluster_usd_h = cluster.usd_per_hour();
            let iaas_engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Shim(cluster), s2);
            let iaas = iaas_engine.run(&plan, config).await.expect("iaas run");

            // Shuffle object size range across shuffle-writing stages.
            let mut shuffle_sizes: Vec<f64> = faas
                .stages
                .iter()
                .filter(|s| {
                    s.downstream_fragments > 0 && s.pipeline != faas.stages.last().unwrap().pipeline
                })
                .filter_map(|s| s.mean_shuffle_object_bytes())
                .collect();
            shuffle_sizes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let shuffle_kib = (
                shuffle_sizes.first().copied().unwrap_or(0.0) / KIB as f64,
                shuffle_sizes.last().copied().unwrap_or(0.0) / KIB as f64,
            );

            QueryEconomics {
                iaas_secs: iaas.runtime_secs,
                faas_secs: faas.runtime_secs,
                cumulated_secs: faas.cumulative_worker_secs,
                faas_cost_cents: faas_cost * 100.0,
                break_even_per_hour: cluster_usd_h / faas_cost,
                peak_to_avg: faas.peak_workers() as f64 / faas.average_workers(),
                storage_requests: requests,
                shuffle_io_kib: shuffle_kib,
                storage_cost_cents: storage_cost * 100.0,
                peak_workers: peak,
            }
        })
    })
}

/// Table 6: execution statistics and derived economic metrics for TPC-H
/// Q6 and Q12 (FaaS vs peak-provisioned IaaS).
pub fn table06() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "table06",
        "Execution statistics and economics: break-even FaaS throughput, peak-to-average nodes",
    );
    let q6 = measure_query(0);
    let q12 = measure_query(1);

    let rows = vec![
        vec!["Metric".to_string(), "H-Q6".into(), "H-Q12".into()],
        vec![
            "IaaS runtime [s]".into(),
            format!("{:.1}", q6.iaas_secs),
            format!("{:.1}", q12.iaas_secs),
        ],
        vec![
            "FaaS runtime [s]".into(),
            format!("{:.1}", q6.faas_secs),
            format!("{:.1}", q12.faas_secs),
        ],
        vec![
            "Cumulated time [s]".into(),
            format!("{:.1}", q6.cumulated_secs),
            format!("{:.1}", q12.cumulated_secs),
        ],
        vec![
            "FaaS cost [c]".into(),
            format!("{:.2}", q6.faas_cost_cents),
            format!("{:.2}", q12.faas_cost_cents),
        ],
        vec![
            "Break-even [Q/h]".into(),
            format!("{:.0}", q6.break_even_per_hour),
            format!("{:.0}", q12.break_even_per_hour),
        ],
        vec![
            "Peak-to-average nodes".into(),
            format!("{:.2}x", q6.peak_to_avg),
            format!("{:.2}x", q12.peak_to_avg),
        ],
        vec![
            "Peak workers".into(),
            q6.peak_workers.to_string(),
            q12.peak_workers.to_string(),
        ],
        vec![
            "Storage requests".into(),
            q6.storage_requests.to_string(),
            q12.storage_requests.to_string(),
        ],
        vec![
            "Shuffle I/O size [KiB]".into(),
            format!("{:.1}", q6.shuffle_io_kib.1),
            format!("{:.1} - {:.0}", q12.shuffle_io_kib.0, q12.shuffle_io_kib.1),
        ],
        vec![
            "Storage cost [c]".into(),
            format!("{:.3}", q6.storage_cost_cents),
            format!("{:.3}", q12.storage_cost_cents),
        ],
    ];
    println!("{}", text_table(&rows));

    r.scalar("q6_slowdown", q6.faas_secs / q6.iaas_secs);
    r.scalar("q12_slowdown", q12.faas_secs / q12.iaas_secs);
    r.scalar("q6_break_even_qph", q6.break_even_per_hour);
    r.scalar("q12_break_even_qph", q12.break_even_per_hour);
    r.scalar("q6_faas_cost_cents", q6.faas_cost_cents);
    r.scalar("q12_faas_cost_cents", q12.faas_cost_cents);
    r.scalar("q12_peak_to_avg", q12.peak_to_avg);
    r.scalar("q12_storage_requests", q12.storage_requests as f64);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn table04_sizes_are_paper_magnitude() {
        let r = table04();
        let lineitem = r.scalars["h_lineitem_sf1000_gib"];
        // Paper: 177.4 GiB. Encoding differences allowed; same magnitude.
        assert!(
            (100.0..=320.0).contains(&lineitem),
            "lineitem {lineitem} GiB"
        );
        let orders = r.scalars["h_orders_sf1000_gib"];
        assert!(orders < lineitem / 2.5, "orders much smaller: {orders}");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn table05_variability_shapes() {
        let r = table05();
        // EU cluster startup is substantially slower when cold (paper: ~1.5x).
        assert!(
            r.scalars["eu_cold_mr"] > 1.15,
            "eu cold MR {}",
            r.scalars["eu_cold_mr"]
        );
        // US and AP sit near parity (paper: 1.00 / 0.95).
        assert!((0.85..=1.1).contains(&r.scalars["ap_cold_mr"]));
        // Cold runs vary more than warm runs in the busy regions.
        assert!(r.scalars["us_cold_cov"] > r.scalars["us_warm_cov"]);
        assert!(r.scalars["ap_cold_cov"] > r.scalars["ap_warm_cov"]);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn table06_economics_shapes() {
        let r = table06();
        // FaaS is slightly slower than peak-provisioned IaaS (paper: 6-10%).
        let s6 = r.scalars["q6_slowdown"];
        let s12 = r.scalars["q12_slowdown"];
        assert!((1.0..=1.6).contains(&s6), "q6 slowdown {s6}");
        assert!((1.0..=1.6).contains(&s12), "q12 slowdown {s12}");
        // Q6 breaks even at a higher query rate than Q12 (cheaper query).
        assert!(
            r.scalars["q6_break_even_qph"] > r.scalars["q12_break_even_qph"],
            "{} vs {}",
            r.scalars["q6_break_even_qph"],
            r.scalars["q12_break_even_qph"]
        );
        // Intra-query elasticity: peak-to-average around 2-3x (paper 2.43).
        let pta = r.scalars["q12_peak_to_avg"];
        assert!((1.5..=4.0).contains(&pta), "peak-to-avg {pta}");
        // Q12 needs far more storage requests than Q6 (shuffles).
        assert!(r.scalars["q12_storage_requests"] > 1_000.0);
    }
}
