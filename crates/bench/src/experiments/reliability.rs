//! Reliability tax: query latency and cost as a function of the injected
//! fault rate, with per-task retry and speculative re-execution keeping
//! the TPC-H suite correct throughout. Complements the paper's
//! fault-tolerance discussion (Sec. 3.2) with a quantitative sweep: every
//! retried attempt and speculative duplicate is billed, so reliability
//! shows up as a measurable latency/cost overhead.

use crate::datasets::load_paper_datasets;
use crate::{full_profile, in_sim_faulted};
use skyrise::engine::{queries, ProfileCost, Skyrise, TaskPolicy};
use skyrise::micro::{text_table, ExperimentResult, NamedSeries};
use skyrise::prelude::*;
use skyrise::sim::FaultConfig;

/// Aggregates of one full-suite run at a single fault rate.
struct RateOutcome {
    runtime_secs: f64,
    cost_usd: f64,
    task_retries: u64,
    speculative: u64,
    failed_secs: f64,
    faults_injected: u64,
}

fn run_rate(idx: usize, rate: f64) -> RateOutcome {
    let faults = FaultConfig {
        storage_throttle_prob: rate / 5.0,
        storage_timeout_prob: rate / 10.0,
        ..FaultConfig::compute(rate)
    };
    in_sim_faulted(0xFA17_0000 + idx as u64, faults, move |ctx| {
        Box::pin(async move {
            let meter = shared_meter();
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            load_paper_datasets(&storage, 0.004, 0.02).unwrap();
            let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
            let config = QueryConfig {
                target_bytes_per_worker: 256 << 20,
                task_policy: TaskPolicy {
                    max_attempts: 6,
                    straggler_base_secs: 60.0,
                    ..TaskPolicy::default()
                },
                ..QueryConfig::default()
            };

            let before = meter.borrow().report();
            let mut out = RateOutcome {
                runtime_secs: 0.0,
                cost_usd: 0.0,
                task_retries: 0,
                speculative: 0,
                failed_secs: 0.0,
                faults_injected: 0,
            };
            for plan in queries::suite() {
                let response = engine
                    .run(&plan, config.clone())
                    .await
                    .expect("query completes under injected faults");
                out.runtime_secs += response.runtime_secs;
                for s in &response.stages {
                    out.task_retries += u64::from(s.task_retries);
                    out.speculative += u64::from(s.speculative_invokes);
                    out.failed_secs += s.failed_attempt_secs;
                }
            }
            let after = meter.borrow().report();
            out.cost_usd = ProfileCost::delta(&before, &after).total_usd();
            let stats = ctx.faults().stats();
            out.faults_injected = stats.transients
                + stats.crashes_armed
                + stats.coldstart_spikes
                + stats.storage_throttles
                + stats.storage_timeouts;
            out
        })
    })
}

/// Reliability sweep: the TPC-H suite under increasing injected fault
/// rates, with retries and speculative re-execution enabled.
pub fn reliability() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "reliability",
        "Reliability tax: suite latency/cost vs injected fault rate",
    );
    let rates: Vec<f64> = if full_profile() {
        vec![0.0, 0.01, 0.02, 0.05, 0.10]
    } else {
        vec![0.0, 0.02, 0.05]
    };
    r.param("queries", "q1,q6,q12,bb_q3");
    r.param("rates", format!("{rates:?}"));
    r.param("max_attempts", 6);

    let outcomes: Vec<RateOutcome> = rates
        .iter()
        .enumerate()
        .map(|(i, &p)| run_rate(i, p))
        .collect();

    let mut rows = vec![vec![
        "Fault rate".to_string(),
        "Runtime [s]".into(),
        "Cost [$]".into(),
        "Retries".into(),
        "Speculative".into(),
        "Failed [s]".into(),
        "Injected".into(),
    ]];
    for (&p, o) in rates.iter().zip(&outcomes) {
        rows.push(vec![
            format!("{p:.2}"),
            format!("{:.2}", o.runtime_secs),
            format!("{:.4}", o.cost_usd),
            o.task_retries.to_string(),
            o.speculative.to_string(),
            format!("{:.2}", o.failed_secs),
            o.faults_injected.to_string(),
        ]);
    }
    println!("{}", text_table(&rows));

    let points = |f: &dyn Fn(&RateOutcome) -> f64| -> Vec<(f64, f64)> {
        rates
            .iter()
            .zip(&outcomes)
            .map(|(&p, o)| (p, f(o)))
            .collect()
    };
    r.push_series(NamedSeries::new(
        "suite_runtime_secs",
        points(&|o| o.runtime_secs),
    ));
    r.push_series(NamedSeries::new("suite_cost_usd", points(&|o| o.cost_usd)));
    r.push_series(NamedSeries::new(
        "task_retries",
        points(&|o| o.task_retries as f64),
    ));
    r.push_series(NamedSeries::new(
        "speculative_invokes",
        points(&|o| o.speculative as f64),
    ));
    r.push_series(NamedSeries::new(
        "failed_attempt_secs",
        points(&|o| o.failed_secs),
    ));
    r.push_series(NamedSeries::new(
        "faults_injected",
        points(&|o| o.faults_injected as f64),
    ));

    for (&p, o) in rates.iter().zip(&outcomes) {
        let tag = format!("rate_{:03}", (p * 100.0).round() as u32);
        r.scalar(&format!("{tag}_runtime_secs"), o.runtime_secs);
        r.scalar(&format!("{tag}_cost_usd"), o.cost_usd);
        r.scalar(&format!("{tag}_task_retries"), o.task_retries as f64);
        r.scalar(&format!("{tag}_faults_injected"), o.faults_injected as f64);
    }
    let base = &outcomes[0];
    let peak = outcomes.last().expect("at least one rate");
    if base.runtime_secs > 0.0 {
        r.scalar(
            "peak_rate_runtime_overhead_pct",
            100.0 * (peak.runtime_secs - base.runtime_secs) / base.runtime_secs,
        );
    }
    if base.cost_usd > 0.0 {
        r.scalar(
            "peak_rate_cost_overhead_pct",
            100.0 * (peak.cost_usd - base.cost_usd) / base.cost_usd,
        );
    }
    r
}
