//! Figures 5–7: serverless network characterisation.

use crate::in_sim;
use skyrise::compute::nic_for;
use skyrise::micro::{
    analyze_burst, ascii_chart, measure, Direction, ExperimentResult, NamedSeries, NetIoConfig,
};
use skyrise::net::presets;
use skyrise::prelude::*;
use skyrise::pricing::ec2_instance;
use std::rc::Rc;

/// Fig. 5: function network throughput at 20 ms intervals, with a 3 s
/// sleep that refills the (rechargeable half of the) token bucket.
pub fn fig05() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig05",
        "Function network throughput at 20 ms intervals with refill pause",
    );
    r.param("duration", "8s").param("pause", "1s..4s");

    let (inbound, outbound) = in_sim(0xF105, |ctx| {
        Box::pin(async move {
            let cfg = |direction| NetIoConfig {
                direction,
                duration: SimDuration::from_secs(8),
                pause: Some((SimDuration::from_secs(1), SimDuration::from_secs(3))),
                ..NetIoConfig::default()
            };
            let nic_in = presets::lambda_nic();
            let inbound = measure(&ctx, &nic_in, &cfg(Direction::Inbound)).await;
            let nic_out = presets::lambda_nic();
            let outbound = measure(&ctx, &nic_out, &cfg(Direction::Outbound)).await;
            (inbound, outbound)
        })
    });

    let to_gibs = |s: &skyrise::sim::IntervalSeries| {
        NamedSeries::new(
            "",
            s.points()
                .into_iter()
                .map(|(x, y)| (x, y / GIB as f64))
                .collect(),
        )
    };
    let mut s_in = to_gibs(&inbound);
    s_in.name = "inbound GiB/s".into();
    let mut s_out = to_gibs(&outbound);
    s_out.name = "outbound GiB/s".into();
    println!("{}", ascii_chart(&[s_in.clone(), s_out.clone()], 100, 16));

    let probe_in = analyze_burst(&inbound);
    let probe_out = analyze_burst(&outbound);
    r.scalar("inbound_burst_gib_s", probe_in.burst_bw / GIB as f64);
    r.scalar("outbound_burst_gib_s", probe_out.burst_bw / GIB as f64);
    r.scalar("inbound_baseline_mib_s", probe_in.baseline_bw / MIB as f64);
    r.push_series(s_in);
    r.push_series(s_out);
    r
}

/// Fig. 6: EC2 C6g and Lambda network bursting: burst and baseline
/// throughput plus token-bucket size per instance size.
pub fn fig06() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig06",
        "EC2 C6g and Lambda network bursting: burst/baseline throughput and bucket size",
    );
    let sizes = [
        "c6g.medium",
        "c6g.large",
        "c6g.xlarge",
        "c6g.2xlarge",
        "c6g.4xlarge",
        "c6g.8xlarge",
        "c6g.12xlarge",
        "c6g.16xlarge",
    ];
    let mut burst_pts = Vec::new();
    let mut base_pts = Vec::new();
    let mut bucket_pts = Vec::new();
    let mut names: Vec<String> = Vec::new();

    for (idx, name) in sizes.iter().enumerate() {
        let spec = ec2_instance(name).expect("catalog");
        // Measure long enough to drain the bucket and observe baseline;
        // the paper's runs took 3 to 45 minutes depending on size.
        let drain_secs = if spec.net_bucket_bytes() > 0.0 {
            spec.net_bucket_bytes() / (spec.net_burst_bps() - spec.net_baseline_bps()).max(1.0)
        } else {
            0.0
        };
        let duration = SimDuration::from_secs_f64((drain_secs * 1.6).max(10.0));
        let probe = in_sim(0xF600 + idx as u64, move |ctx| {
            Box::pin(async move {
                let nic = nic_for(&spec);
                let cfg = NetIoConfig {
                    duration,
                    flows: 8,
                    ..NetIoConfig::default()
                };
                let series = measure(&ctx, &nic, &cfg).await;
                analyze_burst(&series)
            })
        });
        names.push(name.to_string());
        burst_pts.push((idx as f64, probe.burst_bw * 8.0 / 1e9)); // Gbps
        base_pts.push((idx as f64, probe.baseline_bw * 8.0 / 1e9));
        bucket_pts.push((idx as f64, probe.bucket_bytes / GIB as f64));
        r.scalar(&format!("{name}_burst_gbps"), probe.burst_bw * 8.0 / 1e9);
        r.scalar(
            &format!("{name}_bucket_gib"),
            probe.bucket_bytes / GIB as f64,
        );
    }

    // Lambda alongside.
    let lambda_probe = in_sim(0xF6FF, |ctx| {
        Box::pin(async move {
            let nic = presets::lambda_nic();
            let cfg = NetIoConfig {
                duration: SimDuration::from_secs(10),
                ..NetIoConfig::default()
            };
            let series = measure(&ctx, &nic, &cfg).await;
            analyze_burst(&series)
        })
    });
    let li = sizes.len() as f64;
    names.push("lambda".into());
    burst_pts.push((li, lambda_probe.burst_bw * 8.0 / 1e9));
    base_pts.push((li, lambda_probe.baseline_bw * 8.0 / 1e9));
    bucket_pts.push((li, lambda_probe.bucket_bytes / GIB as f64));
    r.scalar("lambda_burst_gbps", lambda_probe.burst_bw * 8.0 / 1e9);
    r.scalar("lambda_bucket_gib", lambda_probe.bucket_bytes / GIB as f64);

    let mut rows = vec![vec![
        "Instance".to_string(),
        "Burst [Gbps]".into(),
        "Baseline [Gbps]".into(),
        "Bucket [GiB]".into(),
    ]];
    for (i, n) in names.iter().enumerate() {
        rows.push(vec![
            n.clone(),
            format!("{:.2}", burst_pts[i].1),
            format!("{:.2}", base_pts[i].1),
            format!("{:.2}", bucket_pts[i].1),
        ]);
    }
    println!("{}", skyrise::micro::text_table(&rows));

    r.push_series(NamedSeries::new("burst_gbps", burst_pts));
    r.push_series(NamedSeries::new("baseline_gbps", base_pts));
    r.push_series(NamedSeries::new("bucket_gib", bucket_pts));
    r
}

/// Fig. 7: aggregated network throughput for 32–256 concurrent functions,
/// with and without a customer-owned VPC.
pub fn fig07() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig07",
        "Aggregated function network throughput, with/without VPC",
    );
    let counts = [32usize, 64, 128, 256];
    let mut no_vpc_burst = Vec::new();
    let mut vpc_burst = Vec::new();
    let mut no_vpc_base = Vec::new();

    for (idx, &n) in counts.iter().enumerate() {
        for vpc in [false, true] {
            let (agg_burst, agg_base) = in_sim(0xF700 + idx as u64 * 2 + vpc as u64, move |ctx| {
                Box::pin(async move {
                    let fabric = vpc
                        .then(|| Fabric::rate_capped("customer-vpc", presets::VPC_AGGREGATE_CAP));
                    let handles: Vec<_> = (0..n)
                        .map(|i| {
                            let ctx2 = ctx.clone();
                            let fabric = fabric.clone();
                            ctx.spawn(async move {
                                // Small per-sandbox variation, as the platform applies.
                                let scale = 1.0 + ((i % 7) as f64 - 3.0) * 0.01;
                                let nic = presets::lambda_nic_scaled(scale, scale);
                                let cfg = NetIoConfig {
                                    duration: SimDuration::from_secs(3),
                                    fabric,
                                    ..NetIoConfig::default()
                                };
                                measure(&ctx2, &nic, &cfg).await
                            })
                        })
                        .collect();
                    let series = join_all(handles).await;
                    let mut agg = series[0].clone();
                    for s in &series[1..] {
                        agg.merge(s);
                    }
                    let probe = analyze_burst(&agg);
                    (probe.burst_bw, probe.baseline_bw)
                })
            });
            let x = n as f64;
            if vpc {
                vpc_burst.push((x, agg_burst / GIB as f64));
            } else {
                no_vpc_burst.push((x, agg_burst / GIB as f64));
                no_vpc_base.push((x, agg_base / GIB as f64));
            }
        }
    }

    println!(
        "{}",
        ascii_chart(
            &[
                NamedSeries::new("burst (no VPC) GiB/s", no_vpc_burst.clone()),
                NamedSeries::new("burst (VPC) GiB/s", vpc_burst.clone()),
                NamedSeries::new("baseline (no VPC) GiB/s", no_vpc_base.clone()),
            ],
            80,
            14,
        )
    );
    r.scalar(
        "no_vpc_burst_at_256_gib_s",
        no_vpc_burst.last().expect("points").1,
    );
    r.scalar(
        "vpc_burst_at_256_gib_s",
        vpc_burst.last().expect("points").1,
    );
    r.push_series(NamedSeries::new("no_vpc_burst", no_vpc_burst));
    r.push_series(NamedSeries::new("vpc_burst", vpc_burst));
    r.push_series(NamedSeries::new("no_vpc_baseline", no_vpc_base));
    let _ = Rc::new(());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig05_reproduces_burst_and_baseline() {
        let r = fig05();
        assert!((r.scalars["inbound_burst_gib_s"] - 1.2).abs() < 0.1);
        assert!(r.scalars["outbound_burst_gib_s"] < r.scalars["inbound_burst_gib_s"]);
        assert!((r.scalars["inbound_baseline_mib_s"] - 75.0).abs() < 15.0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig06_bucket_grows_with_instance_size_and_lambda_is_tiny() {
        let r = fig06();
        let medium = r.scalars["c6g.medium_bucket_gib"];
        let xl4 = r.scalars["c6g.4xlarge_bucket_gib"];
        assert!(xl4 > 3.0 * medium, "bucket grows: {medium} -> {xl4}");
        let lambda = r.scalars["lambda_bucket_gib"];
        assert!(lambda < 0.5, "lambda bucket is ~0.3 GiB: {lambda}");
        // Large instances have no burst: burst == baseline.
        assert!(
            (r.scalars["c6g.16xlarge_burst_gbps"] - 25.0).abs() < 2.0,
            "16xlarge sustained 25 Gbps"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulates a full experiment; run with --release"
    )]
    fn fig07_scales_without_vpc_and_caps_with_vpc() {
        let r = fig07();
        let free = r.scalars["no_vpc_burst_at_256_gib_s"];
        let caged = r.scalars["vpc_burst_at_256_gib_s"];
        // 256 functions x 1.2 GiB/s ~ 300 GiB/s unconstrained.
        assert!(free > 200.0, "unconstrained {free} GiB/s");
        assert!(caged < 25.0, "VPC-capped {caged} GiB/s (paper: ~20)");
    }
}
