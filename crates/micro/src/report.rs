//! Experiment results: JSON persistence and terminal plotting.
//!
//! The paper's driver "stores the results in a JSON file and hands them
//! to a plotter for visualization" (Sec. 3.1). Ours renders ASCII charts
//! and writes CSV/JSON artifacts under `results/`.

use serde::{Deserialize, Serialize};
use skyrise_pricing::CostReport;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A named data series: `(x, y)` points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedSeries {
    /// Series label.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl NamedSeries {
    /// Shorthand constructor.
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Self {
        NamedSeries {
            name: name.to_string(),
            points,
        }
    }
}

/// The persisted outcome of one experiment run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id: "fig05", "table07", ...
    pub id: String,
    /// Free-form description.
    pub title: String,
    /// Parameters used.
    pub params: BTreeMap<String, String>,
    /// Plotted series.
    pub series: Vec<NamedSeries>,
    /// Scalar findings (break-evens, medians, ...).
    pub scalars: BTreeMap<String, f64>,
    /// The simulated invoice of the experiment.
    pub cost: Option<CostReport>,
}

impl ExperimentResult {
    /// Start a result for an experiment id.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            ..ExperimentResult::default()
        }
    }

    /// Record a parameter.
    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.params.insert(key.to_string(), value.to_string());
        self
    }

    /// Record a scalar finding.
    pub fn scalar(&mut self, key: &str, value: f64) -> &mut Self {
        self.scalars.insert(key.to_string(), value);
        self
    }

    /// Add a series.
    pub fn push_series(&mut self, series: NamedSeries) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("results serialise")
    }

    /// Write JSON (and a CSV per series) under `dir`.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.json", self.id)), self.to_json())?;
        for s in &self.series {
            let mut csv = String::from("x,y\n");
            for (x, y) in &s.points {
                let _ = writeln!(csv, "{x},{y}");
            }
            let safe: String = s
                .name
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            std::fs::write(dir.join(format!("{}_{safe}.csv", self.id)), csv)?;
        }
        Ok(())
    }
}

/// Render series as a fixed-size ASCII chart (shared x-axis).
pub fn ascii_chart(series: &[NamedSeries], width: usize, height: usize) -> String {
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (0.0f64, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if !x_min.is_finite() || !y_max.is_finite() || series.is_empty() {
        return String::from("(no data)\n");
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = g;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{y_max:>12.3e} +{}", "-".repeat(width));
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "{:>12} |{line}", "");
    }
    let _ = writeln!(out, "{y_min:>12.3e} +{}", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>13}{:<width$}",
        "",
        format!("x: {x_min:.3} .. {x_max:.3}")
    );
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "{:>14} {} = {}", "", glyphs[si % glyphs.len()], s.name);
    }
    out
}

/// Render aligned rows as a text table (first row = header).
pub fn text_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().expect("non-empty");
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
        }
        let _ = writeln!(out);
        if ri == 0 {
            let total: usize = widths.iter().map(|w| w + 2).sum();
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_roundtrip_and_builders() {
        let mut r = ExperimentResult::new("fig05", "Function network throughput");
        r.param("duration", "5s")
            .scalar("burst_gib_s", 1.2)
            .push_series(NamedSeries::new("inbound", vec![(0.0, 1.0), (1.0, 0.5)]));
        let json = r.to_json();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "fig05");
        assert_eq!(back.series.len(), 1);
        assert_eq!(back.scalars["burst_gib_s"], 1.2);
    }

    #[test]
    fn save_writes_json_and_csv() {
        let dir = std::env::temp_dir().join("skyrise-test-results");
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = ExperimentResult::new("t1", "test");
        r.push_series(NamedSeries::new("a b", vec![(1.0, 2.0)]));
        r.save(&dir).unwrap();
        assert!(dir.join("t1.json").exists());
        assert!(dir.join("t1_a_b.csv").exists());
        let csv = std::fs::read_to_string(dir.join("t1_a_b.csv")).unwrap();
        assert!(csv.contains("1,2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ascii_chart_renders_all_series() {
        let s = vec![
            NamedSeries::new("up", (0..10).map(|i| (i as f64, i as f64)).collect()),
            NamedSeries::new(
                "down",
                (0..10).map(|i| (i as f64, 9.0 - i as f64)).collect(),
            ),
        ];
        let chart = ascii_chart(&s, 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("up"));
        assert!(chart.contains("down"));
    }

    #[test]
    fn ascii_chart_handles_degenerate_input() {
        assert_eq!(ascii_chart(&[], 10, 5), "(no data)\n");
        let flat = vec![NamedSeries::new("flat", vec![(1.0, 1.0), (1.0, 1.0)])];
        let chart = ascii_chart(&flat, 10, 5);
        assert!(chart.contains('*'));
    }

    #[test]
    fn text_table_aligns() {
        let t = text_table(&[
            vec!["Service".into(), "IOPS".into()],
            vec!["S3".into(), "5500".into()],
            vec!["DynamoDB".into(), "16000".into()],
        ]);
        assert!(t.contains("Service"));
        assert!(t.lines().count() >= 4);
        let lines: Vec<&str> = t.lines().collect();
        // Columns aligned: "5500" and "16000" start at the same offset.
        let c1 = lines[2].find("5500").unwrap();
        let c2 = lines[3].find("16000").unwrap();
        assert_eq!(c1, c2);
    }
}
