//! The storage I/O measurement function (paper Sec. 3.1): "writes or
//! reads randomly generated files of fixed size and number to or from a
//! storage service. For latency measurements, the function calls the
//! synchronous storage service APIs. For throughput measurements, it
//! calls the asynchronous APIs from a fixed-size thread-pool."
//!
//! Behind Figs. 8–13.

use skyrise_net::SharedNic;
use skyrise_sim::{Histogram, IntervalSeries, SimCtx, SimDuration};
use skyrise_storage::{Blob, RequestOpts, Storage};
use std::cell::RefCell;
use std::rc::Rc;

/// One client VM's workload share.
#[derive(Clone)]
pub struct StorageIoConfig {
    /// Number of client VMs.
    pub clients: usize,
    /// Dedicated threads per client (paper: 32).
    pub threads_per_client: usize,
    /// Request payload size.
    pub object_bytes: u64,
    /// Write (true) or read (false).
    pub write: bool,
    /// Measurement window.
    pub duration: SimDuration,
    /// Per-client NIC factory (`None` = unconstrained clients).
    pub client_nic: Option<Rc<dyn Fn() -> SharedNic>>,
    /// Number of pre-created objects per thread to read from.
    pub keyspace_per_thread: usize,
}

impl Default for StorageIoConfig {
    fn default() -> Self {
        StorageIoConfig {
            clients: 1,
            threads_per_client: 32,
            object_bytes: 1024,
            write: false,
            duration: SimDuration::from_secs(10),
            client_nic: None,
            keyspace_per_thread: 4,
        }
    }
}

/// Aggregate outcome of a storage I/O run.
#[derive(Debug, Clone)]
pub struct StorageIoResult {
    /// Successful operations per second.
    pub ops_per_sec: f64,
    /// Failed (throttled/timed-out) operations per second.
    pub failed_per_sec: f64,
    /// Successful payload bytes per second (logical).
    pub bytes_per_sec: f64,
    /// Per-request latency distribution (successes only).
    pub latency: Histogram,
    /// Successful ops over time (1 s buckets).
    pub ops_series: IntervalSeries,
    /// Failed ops over time (1 s buckets).
    pub fail_series: IntervalSeries,
}

/// Key for a benchmark object.
fn bench_key(client: usize, thread: usize, idx: usize) -> String {
    format!("bench/c{client:03}/t{thread:03}/o{idx:04}")
}

/// Pre-create the read working set (unbilled backdoor writes).
pub fn populate(storage: &Storage, cfg: &StorageIoConfig) {
    for c in 0..cfg.clients {
        for t in 0..cfg.threads_per_client {
            for i in 0..cfg.keyspace_per_thread {
                storage.backdoor_put(&bench_key(c, t, i), Blob::synthetic(cfg.object_bytes));
            }
        }
    }
}

/// Closed-loop benchmark: every thread issues the next request as soon as
/// the previous one completes, until the deadline.
pub async fn run_closed_loop(
    ctx: &SimCtx,
    storage: &Storage,
    cfg: &StorageIoConfig,
) -> StorageIoResult {
    populate(storage, cfg);
    let start = ctx.now();
    let deadline = start + cfg.duration;
    let second = SimDuration::from_secs(1);
    let ok_series = Rc::new(RefCell::new(IntervalSeries::new(start, second)));
    let fail_series = Rc::new(RefCell::new(IntervalSeries::new(start, second)));
    let latency = Rc::new(RefCell::new(Histogram::new()));
    let ok_count = Rc::new(RefCell::new(0u64));
    let fail_count = Rc::new(RefCell::new(0u64));
    let bytes = Rc::new(RefCell::new(0u64));

    let mut handles = Vec::new();
    for c in 0..cfg.clients {
        let nic = cfg.client_nic.as_ref().map(|f| f());
        for t in 0..cfg.threads_per_client {
            let ctx2 = ctx.clone();
            let storage = storage.clone();
            let opts = match &nic {
                Some(n) => RequestOpts::from_nic(n),
                None => RequestOpts::default(),
            };
            let cfg = cfg.clone();
            let ok_series = Rc::clone(&ok_series);
            let fail_series = Rc::clone(&fail_series);
            let latency = Rc::clone(&latency);
            let ok_count = Rc::clone(&ok_count);
            let fail_count = Rc::clone(&fail_count);
            let bytes = Rc::clone(&bytes);
            handles.push(ctx.spawn(async move {
                let mut i = 0usize;
                while ctx2.now() < deadline {
                    let key = bench_key(c, t, i % cfg.keyspace_per_thread);
                    i += 1;
                    let t0 = ctx2.now();
                    let outcome = if cfg.write {
                        storage
                            .put(&key, Blob::synthetic(cfg.object_bytes), &opts)
                            .await
                            .map(|()| cfg.object_bytes)
                    } else {
                        storage.get(&key, &opts).await.map(|b| b.logical_len())
                    };
                    let now = ctx2.now();
                    match outcome {
                        Ok(n) => {
                            *ok_count.borrow_mut() += 1;
                            *bytes.borrow_mut() += n;
                            ok_series.borrow_mut().record(now, 1.0);
                            latency.borrow_mut().record((now - t0).as_secs_f64());
                        }
                        Err(_) => {
                            *fail_count.borrow_mut() += 1;
                            fail_series.borrow_mut().record(now, 1.0);
                        }
                    }
                }
            }));
        }
    }
    skyrise_sim::join_all(handles).await;
    let elapsed = (ctx.now() - start).as_secs_f64().max(1e-9);
    let ok_total = *ok_count.borrow();
    let fail_total = *fail_count.borrow();
    let byte_total = *bytes.borrow();
    let result = StorageIoResult {
        ops_per_sec: ok_total as f64 / elapsed,
        failed_per_sec: fail_total as f64 / elapsed,
        bytes_per_sec: byte_total as f64 / elapsed,
        latency: latency.borrow().clone(),
        ops_series: ok_series.borrow().clone(),
        fail_series: fail_series.borrow().clone(),
    };
    result
}

/// Open-loop load: issue requests on a fixed timetable at `rate` requests
/// per second regardless of completions (the Fig. 11 ramp pattern, where
/// Lambda instances generate a deterministic offered load). Returns
/// (successes, failures) series in `bucket`-sized intervals.
pub async fn run_open_loop(
    ctx: &SimCtx,
    storage: &Storage,
    cfg: &StorageIoConfig,
    rate_per_sec: f64,
    bucket: SimDuration,
) -> (IntervalSeries, IntervalSeries, Histogram) {
    populate(storage, cfg);
    let start = ctx.now();
    let ok_series = Rc::new(RefCell::new(IntervalSeries::new(start, bucket)));
    let fail_series = Rc::new(RefCell::new(IntervalSeries::new(start, bucket)));
    let latency = Rc::new(RefCell::new(Histogram::new()));
    let total = (rate_per_sec * cfg.duration.as_secs_f64()) as u64;
    let gap = SimDuration::from_secs_f64(1.0 / rate_per_sec.max(1e-9));

    let mut handles = Vec::with_capacity(total as usize);
    for i in 0..total {
        let at = start + gap * i;
        let ctx2 = ctx.clone();
        let storage = storage.clone();
        let cfg = cfg.clone();
        let ok_series = Rc::clone(&ok_series);
        let fail_series = Rc::clone(&fail_series);
        let latency = Rc::clone(&latency);
        handles.push(ctx.spawn(async move {
            ctx2.sleep_until(at).await;
            let key = bench_key(
                (i % cfg.clients as u64) as usize,
                (i as usize / cfg.clients) % cfg.threads_per_client,
                i as usize % cfg.keyspace_per_thread,
            );
            let t0 = ctx2.now();
            let outcome = storage.get(&key, &RequestOpts::default()).await;
            let now = ctx2.now();
            match outcome {
                Ok(_) => {
                    ok_series.borrow_mut().record(now, 1.0);
                    latency.borrow_mut().record((now - t0).as_secs_f64());
                }
                Err(_) => fail_series.borrow_mut().record(now, 1.0),
            }
        }));
    }
    skyrise_sim::join_all(handles).await;
    let out = (
        ok_series.borrow().clone(),
        fail_series.borrow().clone(),
        latency.borrow().clone(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_pricing::shared_meter;
    use skyrise_sim::{Sim, MIB};
    use skyrise_storage::{DynamoTable, S3Bucket};

    #[test]
    fn closed_loop_read_measures_latency_and_ops() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let meter = shared_meter();
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            let cfg = StorageIoConfig {
                clients: 2,
                threads_per_client: 8,
                duration: SimDuration::from_secs(5),
                ..StorageIoConfig::default()
            };
            run_closed_loop(&ctx, &storage, &cfg).await
        });
        sim.run();
        let r = h.try_take().unwrap();
        // 16 threads at ~27 ms median latency: ~550 ops/s, no throttling.
        assert!(
            r.ops_per_sec > 300.0 && r.ops_per_sec < 800.0,
            "{}",
            r.ops_per_sec
        );
        assert!(r.failed_per_sec < 5.0, "{}", r.failed_per_sec);
        let med = r.latency.median();
        assert!((med - 0.027).abs() < 0.008, "median {med}");
    }

    #[test]
    fn dynamodb_throughput_saturates_at_service_cap() {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let meter = shared_meter();
            let storage = Storage::Dynamo(DynamoTable::on_demand(&ctx, &meter));
            let cfg = StorageIoConfig {
                clients: 4,
                threads_per_client: 32,
                object_bytes: 400 * 1024,
                duration: SimDuration::from_secs(5),
                ..StorageIoConfig::default()
            };
            run_closed_loop(&ctx, &storage, &cfg).await
        });
        sim.run();
        let r = h.try_take().unwrap();
        let mibps = r.bytes_per_sec / MIB as f64;
        // The paper: ~380 MiB/s read ceiling per table.
        assert!((300.0..=420.0).contains(&mibps), "{mibps} MiB/s");
    }

    #[test]
    fn open_loop_over_capacity_shows_failures() {
        let mut sim = Sim::new(3);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let meter = shared_meter();
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            let cfg = StorageIoConfig {
                clients: 4,
                threads_per_client: 8,
                duration: SimDuration::from_secs(10),
                ..StorageIoConfig::default()
            };
            // Offer 8K IOPS against a single 5.5K partition.
            run_open_loop(&ctx, &storage, &cfg, 8_000.0, SimDuration::from_secs(1)).await
        });
        sim.run();
        let (ok, fail, _lat) = h.try_take().unwrap();
        let ok_rate = ok.total() / 10.0;
        let fail_rate = fail.total() / 10.0;
        assert!((5_000.0..=6_500.0).contains(&ok_rate), "ok {ok_rate}");
        assert!(fail_rate > 1_000.0, "fail {fail_rate}");
    }

    #[test]
    fn writes_and_reads_both_work() {
        let mut sim = Sim::new(4);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let meter = shared_meter();
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            let cfg = StorageIoConfig {
                clients: 1,
                threads_per_client: 4,
                write: true,
                duration: SimDuration::from_secs(3),
                ..StorageIoConfig::default()
            };
            run_closed_loop(&ctx, &storage, &cfg).await
        });
        sim.run();
        let r = h.try_take().unwrap();
        assert!(r.ops_per_sec > 10.0);
        // Writes have the higher S3 median (40 ms).
        assert!((r.latency.median() - 0.040).abs() < 0.012);
    }
}
