//! The network I/O measurement function (paper Sec. 3.1): an iPerf3-like
//! traffic generator against simulated endpoints, sampling throughput at
//! 20 ms intervals — the instrument behind Figs. 5–7.

use skyrise_net::{presets, transfer, Fabric, Nic, SharedNic, TransferOpts};
use skyrise_sim::{race, Either, IntervalSeries, SimCtx, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Sampling interval of the paper's network plots.
pub const SAMPLE_INTERVAL: SimDuration = SimDuration::from_millis(20);

/// Traffic direction relative to the function under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Server -> function (download).
    Inbound,
    /// Function -> server (upload).
    Outbound,
}

/// Configuration of one network measurement.
#[derive(Clone)]
pub struct NetIoConfig {
    /// Traffic direction under test.
    pub direction: Direction,
    /// Total measurement window.
    pub duration: SimDuration,
    /// Optional silent break `(start, length)` within the window — the
    /// Fig. 5 experiment sends, pauses 3 s, then sends again.
    pub pause: Option<(SimDuration, SimDuration)>,
    /// Parallel TCP connections (one per vCPU in the paper's setup).
    pub flows: u32,
    /// Per-flow cap (EC2's 5 Gbps single-flow limit), if any.
    pub flow_cap: Option<f64>,
    /// Shared fabric constraint (customer VPC), if any.
    pub fabric: Option<Fabric>,
}

impl Default for NetIoConfig {
    fn default() -> Self {
        NetIoConfig {
            direction: Direction::Inbound,
            duration: SimDuration::from_secs(5),
            pause: None,
            flows: 4,
            flow_cap: Some(presets::EC2_SINGLE_FLOW_CAP),
            fabric: None,
        }
    }
}

/// Drive traffic through `client` for the configured window and return
/// the 20 ms throughput series (bytes per bucket).
pub async fn measure(ctx: &SimCtx, client: &SharedNic, cfg: &NetIoConfig) -> IntervalSeries {
    let recorder = Rc::new(RefCell::new(IntervalSeries::new(
        ctx.now(),
        SAMPLE_INTERVAL,
    )));
    let server = Nic::unlimited();
    let opts = TransferOpts {
        flows: cfg.flows,
        flow_cap: cfg.flow_cap,
        fabric: cfg.fabric.clone(),
        slice: None,
        recorder: Some(Rc::clone(&recorder)),
        label: None,
    };
    let start = ctx.now();
    let phases: Vec<(SimTime, SimTime)> = match cfg.pause {
        Some((at, len)) => vec![
            (start, start + at),
            (start + at + len, start + cfg.duration),
        ],
        None => vec![(start, start + cfg.duration)],
    };
    for (phase_start, phase_end) in phases {
        if ctx.now() < phase_start {
            ctx.sleep_until(phase_start).await;
        }
        // Stream "unlimited" data until the phase deadline: issue large
        // transfers and cancel the tail one at the deadline.
        while ctx.now() < phase_end {
            let remaining = phase_end - ctx.now();
            let deadline = ctx.sleep(remaining);
            let chunk = 4u64 << 30; // far more than any phase can move
            let tx = async {
                match cfg.direction {
                    Direction::Inbound => transfer(ctx, &server, client, chunk, &opts).await,
                    Direction::Outbound => transfer(ctx, client, &server, chunk, &opts).await,
                }
            };
            match race(tx, deadline).await {
                Either::Left(_) => continue, // chunk finished early (never, in practice)
                Either::Right(()) => break,  // deadline: cancel in-flight tail
            }
        }
    }
    Rc::try_unwrap(recorder)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| rc.borrow().clone())
}

/// Burst characteristics extracted from a throughput series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstProbe {
    /// Peak sustained rate during the burst (bytes/s).
    pub burst_bw: f64,
    /// Steady-state rate after exhaustion (bytes/s).
    pub baseline_bw: f64,
    /// Token-bucket capacity estimate: bytes moved above baseline.
    pub bucket_bytes: f64,
}

/// Analyse a series into burst/baseline/bucket (the Fig. 6 metrics).
/// `burst_window` buckets at the start estimate the burst rate; the final
/// quarter of the series estimates the baseline.
pub fn analyze_burst(series: &IntervalSeries) -> BurstProbe {
    let rates = series.rates_per_sec();
    if rates.is_empty() {
        return BurstProbe {
            burst_bw: 0.0,
            baseline_bw: 0.0,
            bucket_bytes: 0.0,
        };
    }
    let burst_window = 5.min(rates.len());
    let burst_bw = rates[..burst_window].iter().sum::<f64>() / burst_window as f64;
    let tail_start = rates.len() - (rates.len() / 4).max(1);
    let baseline_bw = rates[tail_start..].iter().sum::<f64>() / (rates.len() - tail_start) as f64;
    // The baseline itself is spiky (slotted refill), so estimating the
    // bucket per-interval overcounts; the excess over the whole window is
    // robust: total bytes minus what the baseline alone would have moved.
    let span = series.interval().as_secs_f64() * rates.len() as f64;
    let bucket_bytes = (series.total() - baseline_bw * span).max(0.0);
    BurstProbe {
        burst_bw,
        baseline_bw,
        bucket_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_sim::{Sim, GIB, MIB};

    #[test]
    fn lambda_inbound_fig5_shape() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let nic = presets::lambda_nic();
            let cfg = NetIoConfig {
                duration: SimDuration::from_secs(5),
                pause: Some((SimDuration::from_secs(1), SimDuration::from_secs(3))),
                ..NetIoConfig::default()
            };
            measure(&ctx, &nic, &cfg).await
        });
        sim.run();
        let series = h.try_take().unwrap();
        let rates = series.rates_per_sec();
        // Initial burst at ~1.2 GiB/s for ~250 ms.
        assert!(
            rates[0] > 1.1 * GIB as f64,
            "initial burst {:.2e}",
            rates[0]
        );
        let burst_buckets = rates.iter().take(15).filter(|&&r| r > GIB as f64).count();
        assert!(
            (10..=14).contains(&burst_buckets),
            "{burst_buckets} buckets of burst"
        );
        // After the 3 s pause (phase 2 starts at t=4 s, bucket 200): a
        // second, shorter burst from the refilled rechargeable half.
        let second = &rates[200..];
        assert!(
            second[0] > 1.1 * GIB as f64,
            "second burst {:.2e}",
            second[0]
        );
        let second_burst = second.iter().filter(|&&r| r > GIB as f64).count();
        assert!(
            second_burst < burst_buckets,
            "second burst shorter: {second_burst} vs {burst_buckets}"
        );
    }

    #[test]
    fn analyze_burst_recovers_lambda_parameters() {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let nic = presets::lambda_nic();
            let cfg = NetIoConfig {
                duration: SimDuration::from_secs(8),
                ..NetIoConfig::default()
            };
            let series = measure(&ctx, &nic, &cfg).await;
            analyze_burst(&series)
        });
        sim.run();
        let probe = h.try_take().unwrap();
        assert!((probe.burst_bw - 1.2 * GIB as f64).abs() / (1.2 * GIB as f64) < 0.1);
        assert!(
            (probe.baseline_bw - 75.0 * MIB as f64).abs() < 15.0 * MIB as f64,
            "baseline {:.1} MiB/s",
            probe.baseline_bw / MIB as f64
        );
        let bucket_mib = probe.bucket_bytes / MIB as f64;
        assert!(
            (250.0..=360.0).contains(&bucket_mib),
            "bucket {bucket_mib} MiB"
        );
    }

    #[test]
    fn outbound_bucket_is_independent_and_slower() {
        let mut sim = Sim::new(3);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let nic = presets::lambda_nic();
            let cfg_in = NetIoConfig {
                duration: SimDuration::from_secs(1),
                ..NetIoConfig::default()
            };
            let inbound = measure(&ctx, &nic, &cfg_in).await;
            // Outbound immediately after: its bucket is untouched.
            let cfg_out = NetIoConfig {
                direction: Direction::Outbound,
                duration: SimDuration::from_secs(1),
                ..NetIoConfig::default()
            };
            let outbound = measure(&ctx, &nic, &cfg_out).await;
            (analyze_burst(&inbound), analyze_burst(&outbound))
        });
        sim.run();
        let (inb, outb) = h.try_take().unwrap();
        assert!(outb.burst_bw > 0.9 * GIB as f64, "outbound still bursts");
        assert!(outb.burst_bw < inb.burst_bw, "outbound reduced vs inbound");
    }

    #[test]
    fn vpc_fabric_caps_aggregate() {
        let mut sim = Sim::new(4);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let fabric = Fabric::rate_capped("vpc", 2.0 * GIB as f64);
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let ctx2 = ctx.clone();
                    let fabric = fabric.clone();
                    ctx.spawn(async move {
                        let nic = presets::lambda_nic();
                        let cfg = NetIoConfig {
                            duration: SimDuration::from_millis(200),
                            fabric: Some(fabric),
                            ..NetIoConfig::default()
                        };
                        measure(&ctx2, &nic, &cfg).await.total()
                    })
                })
                .collect();
            let totals = skyrise_sim::join_all(handles).await;
            totals.iter().sum::<f64>()
        });
        sim.run();
        let total = h.try_take().unwrap();
        // 8 x 1.2 GiB/s unconstrained would move ~1.9 GiB in 200 ms; the
        // 2 GiB/s fabric caps it at ~0.4 GiB.
        assert!(total < 0.6 * GIB as f64, "fabric-capped total {total}");
    }
}
