//! # skyrise-micro — microbenchmark suite and experiment driver
//!
//! The resource-level half of the Skyrise evaluation framework (paper
//! Sec. 3.1): the network I/O, storage I/O, and minimal measurement
//! functions, plus result persistence and plotting. Application-level
//! experiments use `skyrise-engine` directly.

#![warn(missing_docs)]

pub mod minimal;
pub mod netio;
pub mod report;
pub mod storageio;

pub use minimal::{measure_startup, probe_idle_lifetime, StartupLatency};
pub use netio::{analyze_burst, measure, BurstProbe, Direction, NetIoConfig};
pub use report::{ascii_chart, text_table, ExperimentResult, NamedSeries};
pub use storageio::{run_closed_loop, run_open_loop, StorageIoConfig, StorageIoResult};
