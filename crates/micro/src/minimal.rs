//! The "minimal" function (paper Sec. 3.1): "the minimum amount of code
//! for a cloud function ... a no-op. It does not link any libraries, but
//! random BLOBs of pre-specified sizes for startup experiments."
//!
//! Measures startup latency (cold/warm, by binary size) and sandbox idle
//! lifetime.

use skyrise_compute::{handler, FunctionConfig, LambdaPlatform};
use skyrise_sim::{Histogram, SimDuration};
use std::rc::Rc;

/// Deploy a no-op function with a padded binary of `binary_size` bytes.
pub fn deploy_minimal(platform: &Rc<LambdaPlatform>, name: &str, binary_size: u64) {
    platform.register(
        FunctionConfig {
            name: name.to_string(),
            memory_mib: 128,
            binary_size,
        },
        handler(|_env, _payload: String| async move { Ok(String::new()) }),
    );
}

/// Startup latency distributions of a function.
#[derive(Debug, Clone)]
pub struct StartupLatency {
    /// Coldstart invocation latencies.
    pub cold: Histogram,
    /// Warm invocation latencies.
    pub warm: Histogram,
}

/// Measure `n` cold and `n` warm invocations. Cold samples are taken on
/// fresh names (each first call cold-starts); warm samples reuse the pool.
pub async fn measure_startup(
    platform: &Rc<LambdaPlatform>,
    binary_size: u64,
    n: usize,
) -> StartupLatency {
    let mut cold = Histogram::new();
    let mut warm = Histogram::new();
    for i in 0..n {
        let name = format!("minimal-{binary_size}-{i}");
        deploy_minimal(platform, &name, binary_size);
        let first = platform
            .invoke(&name, String::new())
            .await
            .expect("minimal invokes");
        assert!(first.cold_start);
        cold.record(first.duration.as_secs_f64());
        let second = platform
            .invoke(&name, String::new())
            .await
            .expect("minimal invokes");
        assert!(!second.cold_start);
        warm.record(second.duration.as_secs_f64());
    }
    StartupLatency { cold, warm }
}

/// Probe the sandbox idle lifetime: invoke once, then re-invoke after
/// increasing gaps until a coldstart occurs. Returns the last idle gap
/// that was still warm.
pub async fn probe_idle_lifetime(
    platform: &Rc<LambdaPlatform>,
    step: SimDuration,
    max: SimDuration,
) -> SimDuration {
    let name = "minimal-idle-probe";
    deploy_minimal(platform, name, 1 << 20);
    platform.invoke(name, String::new()).await.expect("warmup");
    let mut gap = step;
    let mut last_warm = SimDuration::ZERO;
    let ctx = platform_ctx(platform);
    while gap <= max {
        ctx.sleep(gap).await;
        let r = platform.invoke(name, String::new()).await.expect("probe");
        if r.cold_start {
            return last_warm;
        }
        last_warm = gap;
        gap += step;
    }
    last_warm
}

fn platform_ctx(platform: &Rc<LambdaPlatform>) -> skyrise_sim::SimCtx {
    // The platform exposes its region but not its ctx; route through a
    // trivial helper function registered for this purpose.
    platform.ctx()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_compute::Region;
    use skyrise_pricing::shared_meter;
    use skyrise_sim::Sim;

    #[test]
    fn coldstarts_grow_with_binary_size() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let meter = shared_meter();
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            let small = measure_startup(&platform, 1 << 20, 20).await;
            let large = measure_startup(&platform, 250 << 20, 20).await;
            (small, large)
        });
        sim.run();
        let (small, large) = h.try_take().unwrap();
        // A 250 MB image adds ~5 s of download at 50 MB/s.
        assert!(
            large.cold.median() > small.cold.median() + 4.0,
            "small {} vs large {}",
            small.cold.median(),
            large.cold.median()
        );
        // Warm invocations do not depend on binary size.
        assert!((large.warm.median() - small.warm.median()).abs() < 0.005);
        assert!(small.warm.median() < 0.01, "warm is single-digit ms");
        assert!(small.cold.median() > 0.1, "cold is >100 ms");
    }

    #[test]
    fn idle_lifetime_is_minutes_scale() {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let meter = shared_meter();
            let platform = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            probe_idle_lifetime(
                &platform,
                SimDuration::from_secs(60),
                SimDuration::from_secs(1800),
            )
            .await
        });
        sim.run();
        let lifetime = h.try_take().unwrap();
        let mins = lifetime.as_secs_f64() / 60.0;
        assert!((2.0..=16.0).contains(&mins), "idle lifetime {mins} min");
    }
}
